(* The 5.4 application stack, end to end: an e1000 NIC model, a driver
   domain, a user-space web server with its own TCP/IP stack (connected to
   the driver over URPC), and a relational database on another core,
   queried over a typed channel. Then the same serving idea scaled out:
   a cluster of multikernel machines behind a load balancer, session
   requests routed through consistent hashing to per-core session shards.

   Run with: dune exec examples/webstack.exe *)

open Mk_sim
open Mk_hw
open Mk
open Mk_net
open Mk_apps

let () =
  let m = Machine.create Platform.amd_2x2 in

  (* Database domain on core 1. *)
  let db = Sqldb.create m ~core:1 in
  Engine.spawn m.Machine.eng ~name:"populate" (fun () ->
      Sqldb.Tpcw.populate db ~items:1000);
  Machine.run m;
  Printf.printf "database: %d items loaded on core 1\n"
    (Option.value (Sqldb.table_rows db "item") ~default:0);

  (* Web server domain on core 3, reached from the driver domain on core 2
     over URPC; the e1000 belongs to the driver. *)
  let nic = Nic.create m ~driver_core:2 () in
  let nif_drv, nif_web = Stack.connect_urpc m ~core_a:2 ~core_b:3 () in
  Netif.set_rx (Nic.netif nic) (fun p -> Netif.transmit nif_drv p);
  Netif.set_rx nif_drv (fun p -> Netif.transmit (Nic.netif nic) p);
  let web_stack = Stack.create m ~core:3 ~checksum_offload:true nif_web in

  let dbch = Flounder.connect m ~name:"web2db" ~client:3 ~server:1 () in
  Sqldb.serve db dbch;

  Http.start_server web_stack ~port:80 (fun ~meth ~path ->
      match (meth, path) with
      | "GET", "/" -> Http.ok_html "<h1>multikernel web stack</h1>"
      | "GET", p when String.length p > 6 && String.sub p 0 6 = "/item/" ->
        let id = String.sub p 6 (String.length p - 6) in
        (match
           Flounder.rpc dbch
             (Printf.sprintf "SELECT title, price FROM item WHERE id = %s" id)
         with
         | Ok { Sqldb.rows = [ [ title; price ] ]; _ } ->
           Http.ok_html
             (Printf.sprintf "item %s: %s at %s cents" id
                (Sqldb.value_to_string title) (Sqldb.value_to_string price))
         | Ok _ -> Http.not_found
         | Error e -> { Http.status = 500; content_type = "text/plain"; body = e })
      | _ -> Http.not_found);

  (* An external client machine, coupled through the NIC's wire. *)
  let cm = Machine.create ~eng:m.Machine.eng Platform.intel_2x4 in
  cm.Machine.brk <- 0x4000_0000;
  let client_nif =
    Netif.create ~name:"client" ~mac:0x02c000000001 ~send:(fun p -> Nic.inject nic p)
  in
  Nic.attach_wire nic (fun p -> Netif.deliver client_nif p);
  let client = Stack.create cm ~core:0 ~ip:0x0a0000fe ~checksum_offload:true client_nif in

  Engine.spawn m.Machine.eng ~name:"client" (fun () ->
      List.iter
        (fun path ->
          match Http.fetch client ~server_ip:(Stack.ip web_stack) ~port:80 ~path with
          | Some (status, body) ->
            Printf.printf "GET %-10s -> %d %s\n%!" path status body
          | None -> Printf.printf "GET %-10s -> no response\n%!" path)
        [ "/"; "/item/42"; "/item/999"; "/nope" ]);
  Machine.run m;
  Printf.printf "\nsimulated time: %.2f ms; NIC rx/tx: %d/%d frames\n"
    (Machine.ns_of_cycles m (Machine.now m) /. 1e6)
    (Nic.rx_count nic) (Nic.tx_count nic);

  (* Scale out: two backend machines behind a load balancer. Repeat
     requests for the same session land on the same per-core table shard
     (hit counts accumulate); distinct sessions spread across machines. *)
  print_endline "\n-- cluster: 2 machines behind a consistent-hash LB --";
  let cl = Mk_cluster.Cluster.create (Mk_cluster.Cluster.default_config ~machines:2 ()) in
  List.iter
    (fun session ->
      let rp, lat = Mk_cluster.Cluster.probe cl ~session in
      Printf.printf
        "GET /session/%d -> %d (machine %d core %d, hit %d) in %.1f us\n%!" session
        rp.Mk_apps.Serve.rp_status rp.Mk_apps.Serve.rp_backend rp.Mk_apps.Serve.rp_core
        rp.Mk_apps.Serve.rp_hits
        (float_of_int lat /. Platform.amd_2x2.Platform.ghz /. 1e3))
    [ 1; 2; 3; 1; 1; 2 ];
  let r =
    Mk_cluster.Cluster.run_load cl ~users:400 ~think:2_000_000 ~warmup:3_000_000
      ~window:10_000_000
  in
  Printf.printf
    "load: %d users -> %.0f req/s served, p50 %d p99 %d cycles; %d wire frames, %d urpc msgs\n"
    r.Mk_cluster.Cluster.r_users r.Mk_cluster.Cluster.r_throughput_rps
    r.Mk_cluster.Cluster.r_p50 r.Mk_cluster.Cluster.r_p99
    r.Mk_cluster.Cluster.r_inter_frames r.Mk_cluster.Cluster.r_intra_msgs;
  print_endline "webstack: done"
