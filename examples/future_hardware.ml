(* Hardware-neutral structure (3.2) in action: the same OS and the same
   shootdown protocols, re-targeted to a hypothetical 64-core mesh machine
   that doesn't exist — nothing in the OS changes; only the platform
   description does. The SKB re-measures the new interconnect at boot and
   the routing layer derives new multicast trees from it.

   Run with: dune exec examples/future_hardware.exe *)

open Mk_sim
open Mk_hw
open Mk

let shootdown_round m proto ~ncores =
  let h = Shootdown.setup m ~proto ~root:0 ~cores:(List.init ncores Fun.id) () in
  let result = ref 0 in
  Engine.spawn m.Machine.eng ~name:"round" (fun () ->
      ignore (Shootdown.round h : int) (* warmup *);
      result := Shootdown.round h);
  Machine.run m;
  !result

let () =
  let plat = Platform.synthetic_mesh ~packages:16 ~cores_per_package:4 in
  Printf.printf "Future machine: %s\n\n" (Platform.describe plat);

  Printf.printf "%5s %12s %12s %12s\n" "cores" "Unicast" "Multicast" "NUMA-Mcast";
  List.iter
    (fun n ->
      let u = shootdown_round (Machine.create plat) Routing.Unicast ~ncores:n in
      let mc = shootdown_round (Machine.create plat) Routing.Multicast ~ncores:n in
      let nm = shootdown_round (Machine.create plat) Routing.Numa_multicast ~ncores:n in
      Printf.printf "%5d %12d %12d %12d\n%!" n u mc nm)
    [ 8; 16; 32; 48; 64 ];

  (* The whole OS boots unchanged on the new machine. *)
  let os = Os.boot ~measure_latencies:Os.No_measure plat in
  Os.run os (fun () ->
      let dom = Os.spawn_domain os ~name:"wide" ~cores:(List.init 64 Fun.id) in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr:0x200000 ~bytes:4096 with
       | Ok _ -> ()
       | Error e -> failwith (Types.error_to_string e));
      List.iter
        (fun c -> ignore (Vspace.touch (Dom.vspace dom) ~core:c ~vaddr:0x200000))
        (Dom.cores dom);
      let t0 = Engine.now_ () in
      (match Os.unmap os dom ~core:0 ~vaddr:0x200000 ~bytes:4096 with
       | Ok () -> ()
       | Error e -> failwith (Types.error_to_string e));
      Printf.printf
        "\nunmap across all 64 cores: %d cycles — same OS code, new tree from the SKB\n"
        (Engine.now_ () - t0));
  print_endline "future_hardware: done"
