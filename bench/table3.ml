(* Table 3: messaging costs on the 2x2-core AMD — URPC between cores vs
   L4's same-core IPC: latency, throughput, and cache footprint. *)

open Mk_sim
open Mk_hw
open Mk
open Mk_baseline

let iters = 60

let urpc_numbers () =
  let plat = Platform.amd_2x2 in
  let m = Machine.create plat in
  let src = 0 and dst = 1 (* same die, matching Table 2s 450-cycle row *) in
  let fwd = Urpc.create m ~sender:src ~receiver:dst ~name:"t3.fwd" () in
  let bwd = Urpc.create m ~sender:dst ~receiver:src ~name:"t3.bwd" () in
  Engine.spawn m.Machine.eng ~name:"t3.echo" (fun () ->
      let rec loop () =
        Urpc.send bwd (Urpc.recv fwd);
        loop ()
      in
      loop ());
  let lat = Stats.create () in
  let dlines = ref 0 in
  Engine.spawn m.Machine.eng ~name:"t3.pinger" (fun () ->
      for _ = 1 to 5 do
        Urpc.send fwd 0;
        ignore (Urpc.recv bwd : int)
      done;
      (* Footprint of one send+receive round, measured by the counters. *)
      Perfcounter.set_footprint_tracking m.Machine.counters true;
      Perfcounter.reset_footprint m.Machine.counters;
      Urpc.send fwd 0;
      ignore (Urpc.recv bwd : int);
      dlines :=
        Perfcounter.footprint_lines m.Machine.counters ~core:src
        + Perfcounter.footprint_lines m.Machine.counters ~core:dst;
      Perfcounter.set_footprint_tracking m.Machine.counters false;
      for _ = 1 to iters do
        let t0 = Engine.now_ () in
        Urpc.send fwd 0;
        ignore (Urpc.recv bwd : int);
        Stats.add lat (float_of_int (Engine.now_ () - t0) /. 2.0)
      done);
  Machine.run m;
  let latency = Stats.mean lat in
  (* Pipelined throughput, measured like Table 2. *)
  let m2 = Machine.create plat in
  let pipe = Urpc.create m2 ~sender:src ~receiver:dst ~slots:16 ~name:"t3.pipe" () in
  let msgs = 400 in
  let elapsed = ref 0 in
  Engine.spawn m2.Machine.eng ~name:"t3.sink" (fun () ->
      let t0 = ref 0 in
      for i = 1 to msgs do
        ignore (Urpc.recv pipe : int);
        if i = 50 then t0 := Engine.now_ ();
        if i = msgs then elapsed := Engine.now_ () - !t0
      done);
  Engine.spawn m2.Machine.eng ~name:"t3.source" (fun () ->
      for i = 1 to msgs do
        Urpc.send pipe i
      done);
  Machine.run m2;
  let tput = float_of_int (msgs - 50) /. (float_of_int !elapsed /. 1000.0) in
  (latency, tput, Urpc.icache_lines, !dlines / 2)

let l4_numbers () =
  let plat = Platform.amd_2x2 in
  let latency = float_of_int (L4_ipc.latency plat) in
  (latency, 1000.0 /. latency, L4_ipc.icache_lines, L4_ipc.dcache_lines)

let run () =
  Common.hr "Table 3: messaging costs on 2x2-core AMD";
  Common.printf "%-8s %9s %12s %8s %8s\n" "" "Latency" "msgs/kcycle" "Icache" "Dcache";
  let ul, ut, ui, ud = urpc_numbers () in
  Common.printf "%-8s %9.0f %12.2f %8d %8d\n" "URPC" ul ut ui ud;
  let ll, lt, li, ld = l4_numbers () in
  Common.printf "%-8s %9.0f %12.2f %8d %8d\n%!" "L4 IPC" ll lt li ld
