(* Standalone driver for the cluster serving sweep: the same cells as
   `main.exe cluster`, without the rest of the harness. Flags:
   `--cluster-smoke` (CI-sized sweep), `--large` (8-machine million-user
   cell), `--pdes N` (PDES domain team), `-j N` (cell-level pool). *)

open Mk_sim
open Mk_benches

let usage () =
  prerr_endline "usage: cluster.exe [-j N] [--pdes N] [--cluster-smoke] [--large]";
  exit 1

let rec parse jobs = function
  | [] -> jobs
  | "--cluster-smoke" :: rest ->
    Cluster_bench.smoke := true;
    parse jobs rest
  | "--large" :: rest ->
    Cluster_bench.large := true;
    parse jobs rest
  | "--pdes" :: n :: rest ->
    (match int_of_string_opt n with
    | Some d when d >= 1 ->
      Pdes.set_domains_override (Some d);
      parse jobs rest
    | _ -> usage ())
  | "-j" :: n :: rest ->
    (match int_of_string_opt n with
    | Some j when j >= 1 -> parse j rest
    | _ -> usage ())
  | _ -> usage ()

let () =
  let jobs = parse 1 (List.tl (Array.to_list Sys.argv)) in
  let pool = if jobs > 1 then Some (Pool.create ~jobs) else None in
  Pool.set_ambient pool;
  Cluster_bench.run ();
  Pool.set_ambient None;
  Option.iter Pool.shutdown pool
