(* Scaling beyond commodity hardware (§3.4's second goal; §7's outlook):
   the same OS on synthetic mesh machines up to 128 cores. Nothing in the
   OS changes — the SKB measures the new interconnect and the routing layer
   derives deeper trees. *)

open Mk_sim
open Mk_hw
open Mk

let machines =
  [ (16, 4); (32, 8); (64, 16); (96, 24); (128, 32) ]
  |> List.map (fun (cores, pkgs) ->
         (cores, Platform.synthetic_mesh ~packages:pkgs ~cores_per_package:4))

let unmap_all plat ~ncores =
  let os = Os.boot ~measure_latencies:false plat in
  Os.run os (fun () ->
      let cores = List.init ncores Fun.id in
      let dom = Os.spawn_domain os ~name:"scale" ~cores in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr:0x500000 ~bytes:4096 with
       | Ok _ -> ()
       | Error e -> Types.fail e);
      let s = Stats.create () in
      for _ = 1 to 8 do
        List.iter
          (fun c -> ignore (Vspace.touch (Dom.vspace dom) ~core:c ~vaddr:0x500000))
          cores;
        let t0 = Engine.now_ () in
        (match Os.protect os dom ~core:0 ~vaddr:0x500000 ~bytes:4096 ~writable:false with
         | Ok () -> ()
         | Error e -> Types.fail e);
        Stats.add_int s (Engine.now_ () - t0);
        ignore (Os.protect os dom ~core:0 ~vaddr:0x500000 ~bytes:4096 ~writable:true)
      done;
      Stats.mean s)

let twopc plat ~ncores =
  let os = Os.boot ~measure_latencies:false plat in
  Os.run os (fun () ->
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members:(List.init ncores Fun.id) in
      let s = Stats.create () in
      for _ = 1 to 8 do
        let t0 = Engine.now_ () in
        let (_ : bool) = Monitor.agree mon ~plan ~op:Monitor.Ag_noop in
        Stats.add_int s (Engine.now_ () - t0)
      done;
      Stats.mean s)

let ipi plat ~ncores =
  let m = Machine.create plat in
  let cores = List.init ncores Fun.id in
  let ctx = Mk_baseline.Ipi_shootdown.setup m Mk_baseline.Ipi_shootdown.Linux ~cores in
  let r = ref 0 in
  Engine.spawn m.Machine.eng (fun () ->
      List.iter (fun c -> Tlb.fill m.Machine.tlbs.(c) ~vpage:1) cores;
      r := Mk_baseline.Ipi_shootdown.unmap ctx ~initiator:0 ~vpages:[ 1 ]);
  Machine.run m;
  float_of_int !r

let run () =
  Common.hr "Scaling extension: synthetic mesh machines up to 128 cores";
  Common.printf "%6s %14s %14s %18s\n" "cores" "mk unmap" "mk 2PC" "Linux-IPI unmap";
  (* Shard every (machine, experiment) cell as its own pool job — the
     128-core machines dominate, so splitting the three columns matters. *)
  let v =
    Pool.run
      (List.concat_map
         (fun (ncores, plat) ->
           [
             (fun () -> unmap_all plat ~ncores);
             (fun () -> twopc plat ~ncores);
             (fun () -> ipi plat ~ncores);
           ])
         machines)
    |> Array.of_list
  in
  List.iteri
    (fun i (ncores, _) ->
      Common.printf "%6d %14.0f %14.0f %18.0f\n%!" ncores v.((3 * i) + 0)
        v.((3 * i) + 1)
        v.((3 * i) + 2))
    machines
