(* Scaling beyond commodity hardware (§3.4's second goal; §7's outlook):
   the same OS on synthetic mesh machines up to 128 cores. Nothing in the
   OS changes — the SKB measures the new interconnect and the routing layer
   derives deeper trees. *)

open Mk_sim
open Mk_hw
open Mk

let machines =
  [ (16, 4); (32, 8); (64, 16); (96, 24); (128, 32) ]
  |> List.map (fun (cores, pkgs) ->
         (cores, Platform.synthetic_mesh ~packages:pkgs ~cores_per_package:4))

(* `--large` adds the 256-core deep-tree PDES point (too slow for every
   CI run; the 64-core point always runs so the referee gate covers the
   sharded path). *)
let large = ref false

(* -- windowed conservative PDES: one simulation sharded across domains --

   A deep synthetic-tree machine split into 4 shards (contiguous package
   ranges; see {!Mk.Shard}), running ONE logical simulation: a two-level
   multicast unmap. Root core 0 sends a round token to a leader core per
   shard over cross-shard URPC; each leader fans out over local URPC to
   every core of its shard; each core invalidates the round's TLB entry
   and read-modify-writes its own package-homed lines; acks aggregate
   back leader-first. The same sharded simulation runs whatever the
   domain count ([MK_PDES] / `--pdes N` pick execution placement only),
   so the reported latency, event and window counts are byte-identical —
   only host wall-clock changes. *)

let pdes_shards = 4
let pdes_rounds = 10
let pdes_line_work = 12 (* load/store pairs per core per round *)

let pdes_unmap ~packages =
  let plat = Platform.synthetic_tree ~packages ~cores_per_package:4 in
  let sh = Shard.create ~n_shards:pdes_shards plat in
  let ncores = Platform.n_cores plat in
  let shard_cores =
    Array.init pdes_shards (fun s ->
        List.filter (fun c -> Shard.shard_of_core sh c = s) (List.init ncores Fun.id))
  in
  let root = 0 in
  (* One leader core per shard; shard 0's leader is distinct from the
     root so every shard runs the same leader loop. *)
  let leader =
    Array.init pdes_shards (fun s ->
        match shard_cores.(s) with
        | c :: next :: _ when c = root -> next
        | c :: _ -> c
        | [] -> assert false)
  in
  (* Each core gets two lines homed on its own package: sharded-workload
     rule — only blocking accesses may cross the cut, and these never
     do. *)
  let addrs =
    Array.init ncores (fun core ->
        let m = Shard.machine_of_core sh core in
        let node = Platform.package_of plat core in
        (Machine.alloc_lines m ~node 1, Machine.alloc_lines m ~node 1))
  in
  let work ~core ~round =
    let m = Shard.machine_of_core sh core in
    let a, b = addrs.(core) in
    Tlb.fill m.Machine.tlbs.(core) ~vpage:round;
    ignore (Tlb.invalidate m.Machine.tlbs.(core) ~vpage:round : bool);
    Engine.charge plat.Platform.tlb_invlpg;
    for _ = 1 to pdes_line_work do
      Coherence.load m.Machine.coh ~core a;
      Coherence.store m.Machine.coh ~core a;
      Coherence.load m.Machine.coh ~core b;
      Coherence.store m.Machine.coh ~core b
    done
  in
  let down =
    Array.init pdes_shards (fun s ->
        Shard.link_urpc sh ~sender:root ~receiver:leader.(s) ())
  in
  let up =
    Array.init pdes_shards (fun s ->
        Shard.link_urpc sh ~sender:leader.(s) ~receiver:root ())
  in
  (* Local fan-out: leader <-> every other core of its shard (the root
     coordinates only). *)
  let fanout =
    Array.init pdes_shards (fun s ->
        let m = Shard.machine sh s in
        List.filter_map
          (fun c ->
            if c = leader.(s) || c = root then None
            else
              Some
                ( c,
                  Urpc.create m ~sender:leader.(s) ~receiver:c (),
                  Urpc.create m ~sender:c ~receiver:leader.(s) () ))
          shard_cores.(s))
  in
  let lat = Stats.create () in
  Pdes.spawn (Shard.pdes sh) ~shard:0 ~name:"pdes.root" (fun () ->
      for r = 1 to pdes_rounds do
        let t0 = Engine.now_ () in
        Array.iter (fun (l : int Shard.link) -> Urpc.send l.Shard.tx r) down;
        Array.iter (fun (l : int Shard.link) -> ignore (Urpc.recv l.Shard.rx : int)) up;
        Stats.add_int lat (Engine.now_ () - t0)
      done);
  Array.iteri
    (fun s l ->
      Pdes.spawn (Shard.pdes sh) ~shard:s ~name:"pdes.leader" (fun () ->
          for _ = 1 to pdes_rounds do
            let r = Urpc.recv (l : int Shard.link).Shard.rx in
            List.iter (fun (_, d, _) -> Urpc.send d r) fanout.(s);
            work ~core:leader.(s) ~round:r;
            List.iter (fun (_, _, a) -> ignore (Urpc.recv a : int)) fanout.(s);
            Urpc.send up.(s).Shard.tx r
          done))
    down;
  Array.iteri
    (fun s chans ->
      List.iter
        (fun (c, d, a) ->
          Engine.spawn (Shard.engine sh s) ~name:"pdes.core" (fun () ->
              for _ = 1 to pdes_rounds do
                let r = Urpc.recv d in
                work ~core:c ~round:r;
                Urpc.send a r
              done))
        chans)
    fanout;
  (* Report *logical* events (executed + fused, as the harness does):
     raw executed counts depend on the fusion mode, and this table is
     referee output for both the fusion and the PDES CI gates. *)
  let ev0 = Pool.total_executed () + Pool.total_fused () in
  Shard.exec sh;
  let events = Pool.total_executed () + Pool.total_fused () - ev0 in
  (Stats.mean lat, events, Shard.barriers sh, Shard.lookahead sh)

let pdes_points () = if !large then [ 16; 64 ] else [ 16 ]

let run_pdes () =
  (* No domain count in the header: execution placement is host-side, and
     this output is byte-diffed serial-vs-parallel in CI. *)
  Common.sub (Printf.sprintf "PDES sharded multicast unmap (%d shards)" pdes_shards);
  Common.printf "%6s %8s %12s %10s %11s %10s\n" "cores" "rounds" "unmap(cyc)" "events"
    "windows" "lookahead";
  List.iter
    (fun packages ->
      let mean, events, windows, la = pdes_unmap ~packages in
      Common.printf "%6d %8d %12.0f %10d %11d %10d\n%!" (packages * 4) pdes_rounds mean
        events windows la)
    (pdes_points ())

let unmap_all plat ~ncores =
  let os = Os.boot ~measure_latencies:Os.No_measure plat in
  Os.run os (fun () ->
      let cores = List.init ncores Fun.id in
      let dom = Os.spawn_domain os ~name:"scale" ~cores in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr:0x500000 ~bytes:4096 with
       | Ok _ -> ()
       | Error e -> Types.fail e);
      let s = Stats.create () in
      for _ = 1 to 8 do
        List.iter
          (fun c -> ignore (Vspace.touch (Dom.vspace dom) ~core:c ~vaddr:0x500000))
          cores;
        let t0 = Engine.now_ () in
        (match Os.protect os dom ~core:0 ~vaddr:0x500000 ~bytes:4096 ~writable:false with
         | Ok () -> ()
         | Error e -> Types.fail e);
        Stats.add_int s (Engine.now_ () - t0);
        ignore (Os.protect os dom ~core:0 ~vaddr:0x500000 ~bytes:4096 ~writable:true)
      done;
      Stats.mean s)

let twopc plat ~ncores =
  let os = Os.boot ~measure_latencies:Os.No_measure plat in
  Os.run os (fun () ->
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members:(List.init ncores Fun.id) in
      let s = Stats.create () in
      for _ = 1 to 8 do
        let t0 = Engine.now_ () in
        let (_ : bool) = Monitor.agree mon ~plan ~op:Monitor.Ag_noop in
        Stats.add_int s (Engine.now_ () - t0)
      done;
      Stats.mean s)

let ipi plat ~ncores =
  let m = Machine.create plat in
  let cores = List.init ncores Fun.id in
  let ctx = Mk_baseline.Ipi_shootdown.setup m Mk_baseline.Ipi_shootdown.Linux ~cores in
  let r = ref 0 in
  Engine.spawn m.Machine.eng (fun () ->
      List.iter (fun c -> Tlb.fill m.Machine.tlbs.(c) ~vpage:1) cores;
      r := Mk_baseline.Ipi_shootdown.unmap ctx ~initiator:0 ~vpages:[ 1 ]);
  Machine.run m;
  float_of_int !r

let run () =
  Common.hr "Scaling extension: synthetic mesh machines up to 128 cores";
  Common.printf "%6s %14s %14s %18s\n" "cores" "mk unmap" "mk 2PC" "Linux-IPI unmap";
  (* Shard every (machine, experiment) cell as its own pool job — the
     128-core machines dominate, so splitting the three columns matters. *)
  let v =
    Pool.run
      (List.concat_map
         (fun (ncores, plat) ->
           [
             (fun () -> unmap_all plat ~ncores);
             (fun () -> twopc plat ~ncores);
             (fun () -> ipi plat ~ncores);
           ])
         machines)
    |> Array.of_list
  in
  List.iteri
    (fun i (ncores, _) ->
      Common.printf "%6d %14.0f %14.0f %18.0f\n%!" ncores v.((3 * i) + 0)
        v.((3 * i) + 1)
        v.((3 * i) + 2))
    machines;
  run_pdes ()
