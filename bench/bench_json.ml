(* Reader/writer for BENCH_sim.json (schema bench_sim/v1).

   The file is both produced and consumed here, so instead of pulling in a
   JSON library the reader line-matches the exact shape the writer emits
   (one bench object per line). Unparseable or missing files read as
   empty, so a stale or hand-edited file degrades to a fresh start rather
   than an error. *)

type entry = { name : string; wall_s : float; events : int }

let rate e = if e.wall_s > 0.0 then float_of_int e.events /. e.wall_s else 0.0

let parse_line line =
  match
    Scanf.sscanf line " {%S: %S, %S: %f, %S: %d" (fun k1 name k2 wall_s k3 events ->
        if k1 = "name" && k2 = "wall_s" && k3 = "events" then Some { name; wall_s; events }
        else None)
  with
  | entry -> entry
  | exception _ -> None

let read path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    let entries = ref [] in
    (try
       while true do
         match parse_line (input_line ic) with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries

(* Merge a partial run into previously recorded results: fresh entries win
   by name, stale entries for benches that did not run this time survive.
   Fresh entries keep their run order; surviving stale entries follow. *)
let merge ~existing ~fresh =
  let stale =
    List.filter (fun e -> not (List.exists (fun f -> f.name = e.name) fresh)) existing
  in
  fresh @ stale

let write path ~jobs entries =
  let oc = open_out path in
  let total_wall = List.fold_left (fun a e -> a +. e.wall_s) 0.0 entries in
  let total_events = List.fold_left (fun a e -> a + e.events) 0 entries in
  Printf.fprintf oc "{\n  \"schema\": \"bench_sim/v1\",\n  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"benches\": [\n";
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    {\"name\": %S, \"wall_s\": %.6f, \"events\": %d, \"events_per_sec\": %.0f}%s\n"
        e.name e.wall_s e.events (rate e)
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"total\": {\"wall_s\": %.6f, \"events\": %d, \"events_per_sec\": %.0f}\n" total_wall
    total_events
    (if total_wall > 0.0 then float_of_int total_events /. total_wall else 0.0);
  Printf.fprintf oc "}\n";
  close_out oc
