(* Reader/writer for BENCH_sim.json (schema bench_sim/v7).

   The file is both produced and consumed here, so instead of pulling in a
   JSON library the reader line-matches the exact shape the writer emits
   (one bench object per line). Unparseable or missing files read as
   empty, so a stale or hand-edited file degrades to a fresh start rather
   than an error.

   v2 additions over v1:
   - [events] is the *logical* simulated event count: scheduler events
     actually executed plus latency charges fused away by the engine
     (see Engine.charge). Pre-fusion files recorded executed events, and
     executed == logical when fusion is off, so v1 and v2 [events] are
     directly comparable; [executed]/[fused] record the split.
   - per-bench GC deltas ([minor_words], [promoted_words],
     [major_collections]) so allocation regressions are tracked alongside
     speed. v1 files read back with [gc = None].

   v3 addition: a per-entry [jobs] — the parallelism the harness ran with
   when *this* bench's numbers were recorded. A merged file can mix runs
   (`-j 2 micro` after a serial full run), so the top-level "jobs" alone
   cannot say which entries' wall-clocks are comparable. 0 = unknown
   (entry read from a pre-v3 file).

   v4 additions: [mode] — how this bench's work was executed ("serial",
   "pool", or "pdes" when it ran sharded windows whose wall-clock depends
   on MK_PDES/--pdes) — and [barriers], the PDES window-barrier count.
   Only same-mode entries have comparable wall-clocks (compare.ml skips
   mismatches). Pre-v4 entries read back with [barriers = 0] and [mode]
   derived from [jobs] ("pool" when > 1, else "serial").

   v5 addition: [shards] — the PDES shard count the bench's simulations
   ran over (high-water mark when a bench boots several machines; 0 =
   nothing sharded). Two "pdes"-mode entries are only wall-clock
   comparable over the same cut, so compare.ml skips shard mismatches
   too. Pre-v5 entries read back with [shards = 0] (unknown).

   v6 addition: [cluster_machines] — the largest simulated cluster the
   bench swept (the cluster bench's scale knob: smoke runs 2 machines,
   the default sweep 8). Different sweeps cost wildly different event
   counts, so compare.ml skips mismatches like mode/shards. 0 = not a
   cluster sweep (every other bench, and pre-v6 entries).

   v7 additions: [wire_batches]/[wire_msgs] — inter-machine wire-link
   traffic in coalescable flush groups and the frames inside them
   (Machine_link counts both whether or not batching is enabled, so the
   figures are identical batched and under MK_NO_WIRE_BATCH=1). The ratio
   msgs/batches is the wire coalescing factor the batching layer exploits.
   0/0 = the bench drove no wire links (or pre-v7 entry). *)

type gc = { minor_words : float; promoted_words : float; major_collections : int }

type entry = {
  name : string;
  wall_s : float;
  events : int;  (* logical: executed + fused *)
  executed : int;
  fused : int;
  barriers : int;  (* PDES window barriers; 0 = did not run sharded *)
  shards : int;  (* PDES shard count (high-water); 0 = unsharded/unknown *)
  cluster_machines : int;  (* largest cluster swept; 0 = not a cluster sweep *)
  wire_batches : int;  (* coalescable wire flush groups; 0 = no wire links *)
  wire_msgs : int;  (* frames inside those groups *)
  mode : string;  (* "serial" | "pool" | "pdes" *)
  gc : gc option;
  jobs : int;  (* harness -j when this entry was recorded; 0 = unknown *)
}

let mode_of_jobs jobs = if jobs > 1 then "pool" else "serial"

let rate e = if e.wall_s > 0.0 then float_of_int e.events /. e.wall_s else 0.0

let parse_line_v7 line =
  match
    Scanf.sscanf line
      " {%S: %S, %S: %f, %S: %d, %S: %d, %S: %d, %S: %f, %S: %f, %S: %f, %S: %d, %S: %d, \
       %S: %S, %S: %d, %S: %d, %S: %d, %S: %d, %S: %d"
      (fun k1 name k2 wall_s k3 events k4 executed k5 fused _k6 _rate k7 minor k8 promoted
           k9 major k10 jobs k11 mode k12 barriers k13 shards k14 cluster_machines
           k15 wire_batches k16 wire_msgs ->
        if
          k1 = "name" && k2 = "wall_s" && k3 = "events" && k4 = "executed" && k5 = "fused"
          && k7 = "minor_words" && k8 = "promoted_words" && k9 = "major_collections"
          && k10 = "jobs" && k11 = "mode" && k12 = "barriers" && k13 = "shards"
          && k14 = "cluster_machines" && k15 = "wire_batches" && k16 = "wire_msgs"
        then
          Some
            {
              name;
              wall_s;
              events;
              executed;
              fused;
              barriers;
              shards;
              cluster_machines;
              wire_batches;
              wire_msgs;
              mode;
              gc = Some { minor_words = minor; promoted_words = promoted; major_collections = major };
              jobs;
            }
        else None)
  with
  | entry -> entry
  | exception _ -> None

let parse_line_v6 line =
  match
    Scanf.sscanf line
      " {%S: %S, %S: %f, %S: %d, %S: %d, %S: %d, %S: %f, %S: %f, %S: %f, %S: %d, %S: %d, \
       %S: %S, %S: %d, %S: %d, %S: %d"
      (fun k1 name k2 wall_s k3 events k4 executed k5 fused _k6 _rate k7 minor k8 promoted
           k9 major k10 jobs k11 mode k12 barriers k13 shards k14 cluster_machines ->
        if
          k1 = "name" && k2 = "wall_s" && k3 = "events" && k4 = "executed" && k5 = "fused"
          && k7 = "minor_words" && k8 = "promoted_words" && k9 = "major_collections"
          && k10 = "jobs" && k11 = "mode" && k12 = "barriers" && k13 = "shards"
          && k14 = "cluster_machines"
        then
          Some
            {
              name;
              wall_s;
              events;
              executed;
              fused;
              barriers;
              shards;
              cluster_machines;
              wire_batches = 0;
              wire_msgs = 0;
              mode;
              gc = Some { minor_words = minor; promoted_words = promoted; major_collections = major };
              jobs;
            }
        else None)
  with
  | entry -> entry
  | exception _ -> None

let parse_line_v5 line =
  match
    Scanf.sscanf line
      " {%S: %S, %S: %f, %S: %d, %S: %d, %S: %d, %S: %f, %S: %f, %S: %f, %S: %d, %S: %d, \
       %S: %S, %S: %d, %S: %d"
      (fun k1 name k2 wall_s k3 events k4 executed k5 fused _k6 _rate k7 minor k8 promoted
           k9 major k10 jobs k11 mode k12 barriers k13 shards ->
        if
          k1 = "name" && k2 = "wall_s" && k3 = "events" && k4 = "executed" && k5 = "fused"
          && k7 = "minor_words" && k8 = "promoted_words" && k9 = "major_collections"
          && k10 = "jobs" && k11 = "mode" && k12 = "barriers" && k13 = "shards"
        then
          Some
            {
              name;
              wall_s;
              events;
              executed;
              fused;
              barriers;
              shards;
              cluster_machines = 0;
              wire_batches = 0;
              wire_msgs = 0;
              mode;
              gc = Some { minor_words = minor; promoted_words = promoted; major_collections = major };
              jobs;
            }
        else None)
  with
  | entry -> entry
  | exception _ -> None

let parse_line_v4 line =
  match
    Scanf.sscanf line
      " {%S: %S, %S: %f, %S: %d, %S: %d, %S: %d, %S: %f, %S: %f, %S: %f, %S: %d, %S: %d, \
       %S: %S, %S: %d"
      (fun k1 name k2 wall_s k3 events k4 executed k5 fused _k6 _rate k7 minor k8 promoted
           k9 major k10 jobs k11 mode k12 barriers ->
        if
          k1 = "name" && k2 = "wall_s" && k3 = "events" && k4 = "executed" && k5 = "fused"
          && k7 = "minor_words" && k8 = "promoted_words" && k9 = "major_collections"
          && k10 = "jobs" && k11 = "mode" && k12 = "barriers"
        then
          Some
            {
              name;
              wall_s;
              events;
              executed;
              fused;
              barriers;
              shards = 0;
              cluster_machines = 0;
              wire_batches = 0;
              wire_msgs = 0;
              mode;
              gc = Some { minor_words = minor; promoted_words = promoted; major_collections = major };
              jobs;
            }
        else None)
  with
  | entry -> entry
  | exception _ -> None

let parse_line_v3 line =
  match
    Scanf.sscanf line
      " {%S: %S, %S: %f, %S: %d, %S: %d, %S: %d, %S: %f, %S: %f, %S: %f, %S: %d, %S: %d"
      (fun k1 name k2 wall_s k3 events k4 executed k5 fused _k6 _rate k7 minor k8 promoted
           k9 major k10 jobs ->
        if
          k1 = "name" && k2 = "wall_s" && k3 = "events" && k4 = "executed" && k5 = "fused"
          && k7 = "minor_words" && k8 = "promoted_words" && k9 = "major_collections"
          && k10 = "jobs"
        then
          Some
            {
              name;
              wall_s;
              events;
              executed;
              fused;
              barriers = 0;
              shards = 0;
              cluster_machines = 0;
              wire_batches = 0;
              wire_msgs = 0;
              mode = mode_of_jobs jobs;
              gc = Some { minor_words = minor; promoted_words = promoted; major_collections = major };
              jobs;
            }
        else None)
  with
  | entry -> entry
  | exception _ -> None

let parse_line_v2 line =
  match
    Scanf.sscanf line " {%S: %S, %S: %f, %S: %d, %S: %d, %S: %d, %S: %f, %S: %f, %S: %f, %S: %d"
      (fun k1 name k2 wall_s k3 events k4 executed k5 fused _k6 _rate k7 minor k8 promoted
           k9 major ->
        if
          k1 = "name" && k2 = "wall_s" && k3 = "events" && k4 = "executed" && k5 = "fused"
          && k7 = "minor_words" && k8 = "promoted_words" && k9 = "major_collections"
        then
          Some
            {
              name;
              wall_s;
              events;
              executed;
              fused;
              barriers = 0;
              shards = 0;
              cluster_machines = 0;
              wire_batches = 0;
              wire_msgs = 0;
              mode = "serial";
              gc = Some { minor_words = minor; promoted_words = promoted; major_collections = major };
              jobs = 0;
            }
        else None)
  with
  | entry -> entry
  | exception _ -> None

let parse_line_v1 line =
  match
    Scanf.sscanf line " {%S: %S, %S: %f, %S: %d" (fun k1 name k2 wall_s k3 events ->
        if k1 = "name" && k2 = "wall_s" && k3 = "events" then
          Some
            {
              name;
              wall_s;
              events;
              executed = events;
              fused = 0;
              barriers = 0;
              shards = 0;
              cluster_machines = 0;
              wire_batches = 0;
              wire_msgs = 0;
              mode = "serial";
              gc = None;
              jobs = 0;
            }
        else None)
  with
  | entry -> entry
  | exception _ -> None

let parse_line line =
  match parse_line_v7 line with
  | Some e -> Some e
  | None ->
  match parse_line_v6 line with
  | Some e -> Some e
  | None ->
  match parse_line_v5 line with
  | Some e -> Some e
  | None ->
    (match parse_line_v4 line with
    | Some e -> Some e
    | None ->
      (match parse_line_v3 line with
      | Some e -> Some e
      | None ->
        (match parse_line_v2 line with Some e -> Some e | None -> parse_line_v1 line)))

let read path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    let entries = ref [] in
    (try
       while true do
         match parse_line (input_line ic) with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries

(* Merge a partial run into previously recorded results: fresh entries win
   by name, stale entries for benches that did not run this time survive.
   Fresh entries keep their run order; surviving stale entries follow. *)
let merge ~existing ~fresh =
  let stale =
    List.filter (fun e -> not (List.exists (fun f -> f.name = e.name) fresh)) existing
  in
  fresh @ stale

let write path ~jobs entries =
  let oc = open_out path in
  let total_wall = List.fold_left (fun a e -> a +. e.wall_s) 0.0 entries in
  let total_events = List.fold_left (fun a e -> a + e.events) 0 entries in
  Printf.fprintf oc "{\n  \"schema\": \"bench_sim/v7\",\n  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"benches\": [\n";
  List.iteri
    (fun i e ->
      let g =
        match e.gc with
        | Some g -> g
        | None -> { minor_words = 0.0; promoted_words = 0.0; major_collections = 0 }
      in
      Printf.fprintf oc
        "    {\"name\": %S, \"wall_s\": %.6f, \"events\": %d, \"executed\": %d, \"fused\": \
         %d, \"events_per_sec\": %.0f, \"minor_words\": %.0f, \"promoted_words\": %.0f, \
         \"major_collections\": %d, \"jobs\": %d, \"mode\": %S, \"barriers\": %d, \
         \"shards\": %d, \"cluster_machines\": %d, \"wire_batches\": %d, \"wire_msgs\": %d}%s\n"
        e.name e.wall_s e.events e.executed e.fused (rate e) g.minor_words g.promoted_words
        g.major_collections e.jobs e.mode e.barriers e.shards e.cluster_machines
        e.wire_batches e.wire_msgs
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"total\": {\"wall_s\": %.6f, \"events\": %d, \"events_per_sec\": %.0f}\n" total_wall
    total_events
    (if total_wall > 0.0 then float_of_int total_events /. total_wall else 0.0);
  Printf.fprintf oc "}\n";
  close_out oc
