(* §5.4 IO workloads: UDP echo over the e1000 model, the static web
   server, and web + SQL database — on the paper's machine/core
   assignments. *)

open Mk_sim
open Mk_hw
open Mk
open Mk_net
open Mk_apps

(* ---------------- UDP echo (2x4-core Intel, e1000) ---------------- *)

let echo () =
  Common.sub "UDP echo throughput (2x4-core Intel, e1000 model)";
  Common.printf "%14s %16s %10s\n" "offered Mbit/s" "achieved Mbit/s" "drops";
  List.iter
    (fun offered ->
      let m = Machine.create Platform.intel_2x4 in
      let nic = Nic.create m ~driver_core:2 () in
      (* Driver domain on core 2; echo application (lwIP as a library in
         its domain) on core 3, connected by URPC — the paper's best
         placement. *)
      let nif_drv, nif_app = Stack.connect_urpc m ~core_a:2 ~core_b:3 () in
      (* Frames from the NIC are forwarded into the app's link by a thin
         driver-domain forwarder; replies go back out the NIC. *)
      Netif.set_rx (Nic.netif nic) (fun p -> Netif.transmit nif_drv p);
      Netif.set_rx nif_drv (fun p -> Netif.transmit (Nic.netif nic) p);
      let app_stack = Stack.create m ~core:3 ~checksum_offload:true nif_app in
      let result = ref None in
      Engine.spawn m.Machine.eng ~name:"echo.bench" (fun () ->
          result :=
            Some
              (Echo.run m ~nic ~app_stack ~port:7 ~payload_bytes:1000
                 ~offered_mbps:offered ~duration:3_000_000));
      Machine.run m;
      match !result with
      | Some r ->
        Common.printf "%14.0f %16.1f %10d\n%!" offered r.Echo.achieved_mbps
          r.Echo.dropped
      | None -> ())
    [ 200.0; 400.0; 600.0; 800.0; 950.0; 1000.0 ]

(* ---------------- web server (2x2-core AMD) ---------------- *)

let duration = 20_000_000

let page = String.make 4100 'x' (* the 4.1kB static page *)

let web_server_setup m ~db_handler =
  (* e1000 driver on core 2, web server on core 3 (same package), other
     services on core 0 — the paper's best placement. *)
  let nic = Nic.create m ~driver_core:2 () in
  let nif_drv, nif_web = Stack.connect_urpc m ~core_a:2 ~core_b:3 () in
  Netif.set_rx (Nic.netif nic) (fun p -> Netif.transmit nif_drv p);
  Netif.set_rx nif_drv (fun p -> Netif.transmit (Nic.netif nic) p);
  let web_stack = Stack.create m ~core:3 ~checksum_offload:true nif_web in
  Http.start_server web_stack ~port:80 (fun ~meth ~path ->
      if meth <> "GET" then Http.not_found
      else
        match db_handler with
        | Some f when String.length path >= 3 && String.sub path 0 3 = "/db" -> f path
        | _ -> if path = "/" then Http.ok_html page else Http.not_found);
  (nic, web_stack)

(* External client cluster: its own machine sharing the engine; frames
   couple through the NIC wire. *)
let client_cluster eng server_nic ~server_ip =
  let cm = Machine.create ~eng Platform.intel_2x4 in
  (* Keep the client cluster's simulated addresses out of the server
     machine's address space (they meet in pbufs crossing the wire). *)
  cm.Machine.brk <- 0x4000_0000;
  let client_nif =
    Netif.create ~name:"cluster" ~mac:0x02c000000001
      ~send:(fun p -> Nic.inject server_nic p)
  in
  Nic.attach_wire server_nic (fun p -> Netif.deliver client_nif p);
  let stack = Stack.create cm ~core:0 ~ip:0x0a0000fe ~checksum_offload:true client_nif in
  ignore server_ip;
  stack

(* lighttpd-on-Linux model: in-kernel stack (per-packet syscall + softirq
   tax), NIC driver and server on the same core. *)
let linux_web_setup m =
  let nic = Nic.create m ~driver_core:3 () in
  (* Per-packet kernel path: interrupt + softirq + socket work + wakeup +
     syscall + copy; the crossings Barrelfish's user-space path avoids. *)
  let kernel_overhead = 18_000 in
  let web_stack =
    Stack.create m ~core:3 ~checksum_offload:true ~kernel_overhead (Nic.netif nic)
  in
  Http.start_server web_stack ~port:80 (fun ~meth ~path ->
      if meth = "GET" && path = "/" then Http.ok_html page else Http.not_found);
  (nic, web_stack)

let run_web_load m nic web_stack ~path =
  let clients = client_cluster m.Machine.eng nic ~server_ip:(Stack.ip web_stack) in
  let reqs = ref 0 in
  Engine.spawn m.Machine.eng ~name:"web.bench" (fun () ->
      reqs :=
        Http.run_load [ clients ] ~server_ip:(Stack.ip web_stack) ~port:80 ~path
          ~clients_per_stack:17 ~duration);
  Machine.run m;
  let plat = m.Machine.plat in
  let seconds = float_of_int duration /. (plat.Platform.ghz *. 1e9) in
  float_of_int !reqs /. seconds

let web () =
  Common.sub "Static web server (2x2-core AMD, 4.1kB page)";
  let m = Machine.create Platform.amd_2x2 in
  let nic, web_stack = web_server_setup m ~db_handler:None in
  let rps = run_web_load m nic web_stack ~path:"/" in
  Common.printf "Barrelfish (user stack + URPC): %.0f requests/s (%.0f Mbit/s)\n%!"
    rps
    (rps *. float_of_int (String.length page) *. 8.0 /. 1e6);
  let m2 = Machine.create Platform.amd_2x2 in
  let nic2, web2 = linux_web_setup m2 in
  let rps2 = run_web_load m2 nic2 web2 ~path:"/" in
  Common.printf "lighttpd/Linux (in-kernel stack): %.0f requests/s (%.0f Mbit/s)\n%!"
    rps2
    (rps2 *. float_of_int (String.length page) *. 8.0 /. 1e6)

let web_sql () =
  Common.sub "Web + SQL database (2x2-core AMD, SELECTs via URPC)";
  let m = Machine.create Platform.amd_2x2 in
  (* Database on the remaining core 1; populated in simulation context. *)
  let db = Sqldb.create m ~core:1 in
  Engine.spawn m.Machine.eng ~name:"db.populate" (fun () ->
      Sqldb.Tpcw.populate db ~items:10_000);
  Machine.run m;
  let binding =
    Flounder.connect m ~name:"websql" ~client:3 ~server:1 ~req_lines:2 ~resp_lines:2 ()
  in
  Sqldb.serve db binding;
  let rng = Prng.create ~seed:42 in
  let db_handler _path =
    let q = Sqldb.Tpcw.point_query rng ~items:10_000 in
    match Flounder.rpc binding q with
    | Ok r ->
      let body =
        String.concat "\n"
          (List.map
             (fun row -> String.concat "," (List.map Sqldb.value_to_string row))
             r.Sqldb.rows)
      in
      Http.ok_html (body ^ "\n")
    | Error e -> { Http.status = 500; content_type = "text/plain"; body = e }
  in
  let nic, web_stack = web_server_setup m ~db_handler:(Some db_handler) in
  let rps = run_web_load m nic web_stack ~path:"/db" in
  Common.printf "requests/s: %.0f (bottleneck: database core)\n%!" rps

let run () =
  Common.hr "Section 5.4: IO workloads";
  echo ();
  web ();
  web_sql ()
