(* Bechamel micro-benchmarks of the simulator's own hot paths (host-side
   performance): one Test.make per subsystem that backs a paper table.

   These tests must NOT shard through the domain pool: bechamel's
   Benchmark.run unconditionally stabilizes the GC before sampling
   (Gc.compact until major-heap live words settle, failwith after 10
   tries), and live words never settle while any other domain is
   allocating — measured: 20/20 stabilize failures against one
   background allocator. So the harness runs this bench serially after
   the pool has joined (see main.ml), and the tests below run
   sequentially on one quiet domain. *)

open Bechamel
open Toolkit
open Mk_sim
open Mk_hw
open Mk

let test_engine =
  (* One engine recycled across iterations ([Engine.reset] rewinds the
     clock of a drained engine): the measured cost is spawn+wait+run, not
     the allocation of a fresh heap/wheel/ring per iteration. *)
  let eng = Engine.create () in
  Test.make ~name:"engine.spawn+run (table1)"
    (Staged.stage (fun () ->
         Engine.reset eng;
         Engine.spawn eng (fun () -> Engine.wait 10);
         Engine.run eng ()))

let test_coherence =
  let m = Machine.create Platform.amd_4x4 in
  let addr = Machine.alloc_lines m 1 in
  Test.make ~name:"coherence.store pair (fig3)"
    (Staged.stage (fun () ->
         Engine.spawn m.Machine.eng (fun () ->
             Coherence.store m.Machine.coh ~core:0 addr;
             Coherence.store m.Machine.coh ~core:5 addr);
         Machine.run m))

let test_urpc =
  (* Machine and channel are reusable across rounds: the ring wraps and
     the sequencer parks between messages, so each iteration measures the
     send/recv path itself rather than machine construction. *)
  let m = Machine.create Platform.amd_2x2 in
  let ch = Urpc.create m ~sender:0 ~receiver:2 () in
  Test.make ~name:"urpc.send+recv (table2)"
    (Staged.stage (fun () ->
         Engine.spawn m.Machine.eng (fun () -> Urpc.send ch 1);
         Engine.spawn m.Machine.eng (fun () -> ignore (Urpc.recv ch : int));
         Machine.run m))

let test_skb =
  let skb = Skb.create () in
  let () = Skb.populate_platform skb Platform.amd_8x4 in
  Test.make ~name:"skb.query (fig6 tree build)"
    (Staged.stage (fun () ->
         ignore
           (Skb.query skb (Skb.fact "core_package" [ Skb.Var "c"; Skb.Int 3 ])
             : Skb.subst list)))

let test_2pc =
  (* Boot once: what Figure 8 times is the agreement round, and 2PC
     rounds are idempotent on a live mesh, so each iteration measures a
     round trip rather than a full OS boot (SKB population included). *)
  let os = Os.boot ~measure_latencies:Os.No_measure Platform.amd_2x2 in
  let mon = Os.monitor os ~core:0 in
  let plan = Os.default_plan os ~root:0 ~members:[ 0; 1; 2; 3 ] in
  Test.make ~name:"monitor.2pc round (fig8)"
    (Staged.stage (fun () ->
         Os.run os (fun () ->
             ignore (Monitor.agree mon ~plan ~op:Monitor.Ag_noop : bool))))

let tests = [ test_engine; test_coherence; test_urpc; test_skb; test_2pc ]

(* Measure one test and return its formatted result lines. The grouped
   wrapper reproduces the "sim <name>" labels of the old single-group
   run; sorting makes line order deterministic (a group is one test here,
   but bechamel hands results back in a hashtable). *)
let run_one test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  (* No kde: we only read the OLS estimates, and bechamel's kde pass
     burns a second full quota on single-run samples nobody consumes.
     No per-sample GC stabilization either — it forces a major-heap
     compaction loop before every sample, which is wall time that
     simulates nothing; OLS over geometrically scaled run counts is
     robust enough for the coarse ns/run table we print. *)
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"sim" ~fmt:"%s %s" [ test ])
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, ols_result) ->
         match Analyze.OLS.estimates ols_result with
         | Some [ est ] -> Printf.sprintf "%-40s %12.0f ns/run" name est
         | _ -> Printf.sprintf "%-40s (no estimate)" name)

let run () =
  Common.hr "Bechamel micro-benchmarks (simulator host performance)";
  List.iter
    (fun t -> List.iter (fun line -> Common.printf "%s\n%!" line) (run_one t))
    tests
