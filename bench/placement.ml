(* Dependency-driven placement: close the SKB loop (§4.9, §5.1's
   conclusion taken one step further). An OpenMP-style workload — teams
   of threads exchanging tokens on an intra-team ring, plus a
   multicast-unmap round over all the threads' cores — runs twice on deep
   synthetic-tree machines:

   - [place_rr]: naive round-robin placement, thread i on package
     (i mod P), the layout an allocation-order scheduler produces. Team
     peers land on different packages, so every ring hop crosses the
     interconnect.
   - [place_skb]: the same profiled run feeds its measured (src, dst)
     message counts back into the SKB as [comm_edge] facts;
     {!Mk.Os.comm_placement} queries them to cluster the chattiest
     threads onto shared packages ({!Mk.Routing.place_threads}), and the
     workload re-runs placed. Ring hops become package-local and the
     multicast tree spans half the packages.

   Both variants print cycles for both phases, so the placement win is a
   number in the transcript (and both land in BENCH_sim.json). *)

open Mk_sim
open Mk_hw
open Mk

let team = 4 (* threads per team = cores per package *)
let ring_rounds = 32
let shoot_warmup = 2
let shoot_rounds = 8

(* 64- and 256-core deep-tree machines; half the cores run threads so
   placement has room to choose. *)
let sizes = [ 64; 256 ]

let plat_of ~ncores = Platform.synthetic_tree ~packages:(ncores / 4) ~cores_per_package:4

let naive_place plat ~threads =
  let p = plat.Platform.n_packages and cpp = plat.Platform.cores_per_package in
  Array.init threads (fun i -> ((i mod p) * cpp) + (i / p))

(* Intra-team token rings over URPC channels between the placed cores;
   returns the cycles from first send to the last thread finishing. *)
let ring_phase os ~place =
  let m = Os.machine os in
  let plat = Os.platform os in
  let threads = Array.length place in
  let peer i k =
    (* k-th successor inside i's team *)
    (i / team * team) + (((i mod team) + k) mod team)
  in
  let tx =
    Array.init threads (fun i ->
        let d = peer i 1 in
        Urpc.create m ~sender:place.(i) ~receiver:place.(d)
          ~node:(Platform.package_of plat place.(d))
          ~name:(Printf.sprintf "ring%d->%d" i d)
          ())
  in
  let rx i = tx.(peer i (team - 1)) in
  let joins = Array.init threads (fun _ -> Sync.Ivar.create ()) in
  let t0 = Engine.now_ () in
  Array.iteri
    (fun i _ ->
      Engine.spawn m.Machine.eng
        ~name:(Printf.sprintf "omp%d" i)
        (fun () ->
          for r = 1 to ring_rounds do
            Urpc.send tx.(i) r;
            ignore (Urpc.recv (rx i) : int)
          done;
          Sync.Ivar.fill joins.(i) ()))
    place;
  Array.iter Sync.Ivar.read joins;
  Engine.now_ () - t0

(* NUMA-aware multicast rounds over the placed cores, with the plan
   computed by the OS (and handed to the protocol through the [?plan]
   override — the tree the SKB's facts produce, not one the protocol
   rebuilds). *)
let shoot_phase os ~place =
  let m = Os.machine os in
  let root = place.(0) in
  let cores = Array.to_list place |> List.sort_uniq compare in
  let members = cores in
  let plan = Os.plan os Routing.Numa_multicast ~root ~members in
  let h = Shootdown.setup m ~proto:Routing.Numa_multicast ~root ~cores ~plan () in
  let lat = Stats.create () in
  for _ = 1 to shoot_warmup do
    ignore (Shootdown.round h : int)
  done;
  for _ = 1 to shoot_rounds do
    Stats.add_int lat (Shootdown.round h)
  done;
  Stats.mean lat

let measure ~ncores ~profile =
  (* [profile] additionally records the naive run's message graph and
     returns the SKB-derived placement for a second, placed run. *)
  let plat = plat_of ~ncores in
  let threads = ncores / 2 in
  let os = Os.boot ~measure_latencies:Os.No_measure plat in
  Os.run os (fun () ->
      let naive = naive_place plat ~threads in
      if not profile then begin
        let ring = ring_phase os ~place:naive in
        let shoot = shoot_phase os ~place:naive in
        (threads, float_of_int ring, shoot, None)
      end
      else begin
        let rec_ = Os.start_comm_profile os in
        let ring_naive = ring_phase os ~place:naive in
        let core_edges = Os.stop_comm_profile os rec_ in
        (* Relabel the profiled core pairs back to logical thread ids and
           feed them to the SKB. *)
        let inv = Array.make ncores (-1) in
        Array.iteri (fun th core -> inv.(core) <- th) naive;
        let edges =
          List.filter_map
            (fun (s, d, w) ->
              if inv.(s) >= 0 && inv.(d) >= 0 then Some (inv.(s), inv.(d), w) else None)
            core_edges
        in
        Os.assert_comm_edges os edges;
        let placed = Os.comm_placement os ~threads in
        let ring = ring_phase os ~place:placed in
        let shoot = shoot_phase os ~place:placed in
        (threads, float_of_int ring, shoot, Some (float_of_int ring_naive))
      end)

let header () =
  Common.printf "%6s %8s %12s %12s %10s\n" "cores" "threads" "ring(cyc)" "mcast(cyc)"
    "speedup"

let run_rr () =
  Common.hr "Placement: naive round-robin (ring teams + multicast, tree machines)";
  header ();
  List.iter
    (fun ncores ->
      let threads, ring, shoot, _ = measure ~ncores ~profile:false in
      Common.printf "%6d %8d %12.0f %12.0f %10s\n%!" ncores threads ring shoot "-")
    sizes

let run_skb () =
  Common.hr "Placement: SKB comm_edge-driven (ring teams + multicast, tree machines)";
  header ();
  List.iter
    (fun ncores ->
      let threads, ring, shoot, naive_ring = measure ~ncores ~profile:true in
      let speedup =
        match naive_ring with Some nr when ring > 0.0 -> nr /. ring | _ -> 0.0
      in
      Common.printf "%6d %8d %12.0f %12.0f %9.2fx\n%!" ncores threads ring shoot speedup)
    sizes
