(* Figure 7: end-to-end unmap (mprotect) latency on the 8x4-core AMD:
   Barrelfish's full message path (LRPC to the monitor + NUMA-aware
   multicast + aggregated acks) vs Linux and Windows serial-IPI
   shootdown. *)

open Mk_sim
open Mk_hw
open Mk
open Mk_baseline

let iters = 25
let vaddr = 0x200000

let barrelfish_point plat ~ncores =
  let os = Os.boot ~measure_latencies:Os.Exhaustive plat in
  let cores = List.init ncores Fun.id in
  Os.run os (fun () ->
      let dom = Os.spawn_domain os ~name:"unmapper" ~cores in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr ~bytes:Types.page_size with
       | Ok _ -> ()
       | Error e -> Types.fail e);
      let lat = Stats.create () in
      for _ = 1 to iters do
        (* Everyone touches the page so all TLBs hold the mapping. *)
        List.iter
          (fun c -> ignore (Vspace.touch (Dom.vspace dom) ~core:c ~vaddr))
          cores;
        let t0 = Engine.now_ () in
        (match Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:false with
         | Ok () -> ()
         | Error e -> Types.fail e);
        Stats.add_int lat (Engine.now_ () - t0);
        (match Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:true with
         | Ok () -> ()
         | Error e -> Types.fail e)
      done;
      Stats.mean lat)

let ipi_point plat style ~ncores =
  let m = Machine.create plat in
  let cores = List.init ncores Fun.id in
  let ctx = Ipi_shootdown.setup m style ~cores in
  let vpage = Types.vpage_of_vaddr vaddr in
  let lat = Stats.create () in
  Engine.spawn m.Machine.eng ~name:"fig7.ipi" (fun () ->
      for _ = 1 to iters do
        List.iter (fun c -> Tlb.fill m.Machine.tlbs.(c) ~vpage) cores;
        Stats.add_int lat (Ipi_shootdown.unmap ctx ~initiator:0 ~vpages:[ vpage ])
      done);
  Machine.run m;
  Stats.mean lat

let run () =
  Common.hr "Figure 7: unmap latency (8x4-core AMD)";
  let plat = Platform.amd_8x4 in
  let counts = Common.core_counts ~max_cores:(Platform.n_cores plat) in
  Common.printf "%5s %12s %12s %12s\n" "cores" "Windows" "Linux" "Barrelfish";
  List.iter
    (fun n ->
      let w = ipi_point plat Ipi_shootdown.Windows ~ncores:n in
      let l = ipi_point plat Ipi_shootdown.Linux ~ncores:n in
      let b = barrelfish_point plat ~ncores:n in
      Common.printf "%5d %12.0f %12.0f %12.0f\n%!" n w l b)
    counts
