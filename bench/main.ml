(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5). Run all with `dune exec bench/main.exe`, or a
   subset: `dune exec bench/main.exe -- fig6 table2`. `-j N` runs the
   selected benches on N parallel domains — each bench is an independent
   deterministic world, so simulated results are identical in any mode and
   output is replayed in program order.

   Every run also reports host-side performance (wall-clock and simulated
   events/sec per bench) and writes it to BENCH_sim.json so the perf
   trajectory of the simulator itself is tracked across commits. *)

open Mk_sim
open Mk_benches

let all : (string * string * (unit -> unit)) list =
  [
    ("fig3", "shared memory vs message passing", Fig3.run);
    ("table1", "LRPC latency", Table1.run);
    ("table2", "URPC latency and throughput", Table2.run);
    ("table3", "URPC vs L4 IPC", Table3.run);
    ("fig6", "TLB shootdown protocols", Fig6.run);
    ("fig7", "end-to-end unmap latency", Fig7.run);
    ("fig8", "two-phase commit", Fig8.run);
    ("table4", "IP loopback", Table4.run);
    ("fig9", "compute-bound workloads", Fig9.run);
    ("polling", "cost-of-polling model (5.2)", Polling.run);
    ("net", "IO workloads (5.4): echo, web, web+sql", Net_bench.run);
    ("ablation", "ablations: page tables, barriers, prefetch", Ablation.run);
    ("scaling", "scaling extension: mesh machines to 128 cores", Scaling.run);
    ("micro", "bechamel simulator micro-benches", Micro.run);
    ("chaos", "fault injection: detection/recovery/goodput (5 nines drill)", Chaos.run);
  ]

type timing = {
  name : string;
  wall_s : float;
  executed : int;  (* scheduler events actually dispatched *)
  fused : int;  (* latency charges coalesced away by Engine.charge *)
  minor_words : float;
  promoted_words : float;
  major_collections : int;
}

(* The logical simulated-event count: what the bench would have cost
   without latency-charge fusion. This is the comparable figure across
   fused and unfused runs (and against pre-fusion baselines). *)
let logical t = t.executed + t.fused

(* Run one bench, capturing wall-clock, the simulated events it cost and
   what it allocated. [Engine.domain_events_executed]/[domain_events_fused]
   and the minor-heap counters are per-domain, so the deltas are this
   bench's own even when siblings run on other domains. *)
let instrumented name f () =
  let ev0 = Engine.domain_events_executed () in
  let fu0 = Engine.domain_events_fused () in
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall_s = Unix.gettimeofday () -. t0 in
  let gc1 = Gc.quick_stat () in
  {
    name;
    wall_s;
    executed = Engine.domain_events_executed () - ev0;
    fused = Engine.domain_events_fused () - fu0;
    minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
    promoted_words = gc1.Gc.promoted_words -. gc0.Gc.promoted_words;
    major_collections = gc1.Gc.major_collections - gc0.Gc.major_collections;
  }

let run_serial selected =
  List.map (fun (name, _, f) -> instrumented name f ()) selected

(* Benches that must not share the process with other running domains:
   bechamel's measurement loop waits for the major heap to quiesce, which
   never happens while sibling domains allocate. These run on the main
   domain after the pool has joined. *)
let serial_only = [ "micro" ]

(* Worker pool over domains: each worker claims the next un-run bench,
   runs it with output buffered, and parks the transcript; the main domain
   then replays transcripts in program order so -j output is byte-identical
   to the serial run (modulo the timing table). *)
let run_parallel jobs selected =
  let benches = Array.of_list selected in
  let n = Array.length benches in
  let next = Atomic.make 0 in
  let results : (Buffer.t * timing) option array = Array.make n None in
  let run_buffered i =
    let name, _, f = benches.(i) in
    let buf = Buffer.create 4096 in
    let timing = Common.redirect_to buf (instrumented name f) in
    results.(i) <- Some (buf, timing)
  in
  let parallel_ok i =
    let name, _, _ = benches.(i) in
    not (List.mem name serial_only)
  in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        if parallel_ok i then run_buffered i;
        loop ()
      end
    in
    loop ()
  in
  let domains =
    List.init (min jobs (max 1 n)) (fun _ -> Domain.spawn worker)
  in
  List.iter Domain.join domains;
  for i = 0 to n - 1 do
    if not (parallel_ok i) then run_buffered i
  done;
  Array.to_list results
  |> List.map (fun r ->
         let buf, timing = Option.get r in
         print_string (Buffer.contents buf);
         timing)

let rate events wall_s = if wall_s > 0.0 then float_of_int events /. wall_s else 0.0

let json_path = "BENCH_sim.json"

let report ~jobs ~timings ~harness_wall =
  Printf.printf "\n==== Simulator performance (host side) ====\n";
  Printf.printf "%-10s %9s %12s %10s %12s %12s %6s\n" "bench" "wall(s)" "events" "fused"
    "events/s" "minorMw" "majGC";
  List.iter
    (fun t ->
      Printf.printf "%-10s %9.3f %12d %10d %12.2e %12.1f %6d\n" t.name t.wall_s (logical t)
        t.fused
        (rate (logical t) t.wall_s)
        (t.minor_words /. 1e6) t.major_collections)
    timings;
  let total_events = List.fold_left (fun a t -> a + logical t) 0 timings in
  Printf.printf "%-10s %9.3f %12d %10s %12.2e  (%d job%s)\n" "total" harness_wall
    total_events ""
    (rate total_events harness_wall)
    jobs
    (if jobs = 1 then "" else "s");
  (* Merge into the existing file rather than overwriting, so a partial
     run (e.g. `-j 2 micro table1`) refreshes only the benches that ran
     and keeps the rest of the record intact. *)
  let fresh =
    List.map
      (fun t ->
        {
          Bench_json.name = t.name;
          wall_s = t.wall_s;
          events = logical t;
          executed = t.executed;
          fused = t.fused;
          gc =
            Some
              {
                Bench_json.minor_words = t.minor_words;
                promoted_words = t.promoted_words;
                major_collections = t.major_collections;
              };
        })
      timings
  in
  let merged = Bench_json.merge ~existing:(Bench_json.read json_path) ~fresh in
  Bench_json.write json_path ~jobs merged;
  Printf.printf "written to %s (%d bench%s merged)\n%!" json_path (List.length merged)
    (if List.length merged = 1 then "" else "es")

let usage () =
  Printf.eprintf
    "usage: main.exe [-j N] [--seed N] [list | all | <bench>...]\n       benches: %s\n"
    (String.concat " " (List.map (fun (n, _, _) -> n) all));
  exit 1

(* Pull `--seed N` (replay one chaos seed) out of the argument list
   wherever it appears. *)
let rec extract_seed acc = function
  | "--seed" :: n :: rest ->
    (match int_of_string_opt n with
     | Some s ->
       Chaos.seed_override := Some s;
       List.rev_append acc rest
     | None -> usage ())
  | a :: rest -> extract_seed (a :: acc) rest
  | [] -> List.rev acc

let () =
  let args = Array.to_list Sys.argv |> List.tl |> extract_seed [] in
  let jobs, args =
    match args with
    | "-j" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> (j, rest)
       | _ -> usage ())
    | _ -> (1, args)
  in
  match args with
  | [ "list" ] ->
    List.iter (fun (name, doc, _) -> Printf.printf "%-8s %s\n" name doc) all
  | names ->
    let selected =
      match names with
      | [] | [ "all" ] -> all
      | names ->
        List.map
          (fun name ->
            match List.find_opt (fun (n, _, _) -> n = name) all with
            | Some b -> b
            | None ->
              Printf.eprintf "unknown bench %S (try `list`)\n" name;
              exit 1)
          names
    in
    let t0 = Unix.gettimeofday () in
    let timings =
      if jobs = 1 then run_serial selected else run_parallel jobs selected
    in
    report ~jobs ~timings ~harness_wall:(Unix.gettimeofday () -. t0)
