(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5). Run all with `dune exec bench/main.exe`, or a
   subset: `dune exec bench/main.exe -- fig6 table2`. `-j N` installs a
   shared domain pool (Pool.set_ambient) sized to N: whole benches are
   submitted as pool jobs, and benches that themselves sweep independent
   configurations (chaos seeds, scaling machines, ablation grid, ...)
   shard through the *same* pool via nested Pool.run — so parallelism
   helps even when one long bench dominates. Each job is an independent
   deterministic world and output replays in submission order, so
   simulated results and printed output are byte-identical in any mode
   (only the host-side timing table varies). The one exception is micro:
   bechamel aborts if any other domain allocates while it samples
   (see micro.ml), so micro always runs serially after the pool joins —
   in every mode, so transcripts still agree byte-for-byte.

   Every run also reports host-side performance (wall-clock and simulated
   events/sec per bench) and writes it to BENCH_sim.json so the perf
   trajectory of the simulator itself is tracked across commits. *)

open Mk_sim
open Mk_benches

let all : (string * string * (unit -> unit)) list =
  [
    ("fig3", "shared memory vs message passing", Fig3.run);
    ("table1", "LRPC latency", Table1.run);
    ("table2", "URPC latency and throughput", Table2.run);
    ("table3", "URPC vs L4 IPC", Table3.run);
    ("fig6", "TLB shootdown protocols", Fig6.run);
    ("fig7", "end-to-end unmap latency", Fig7.run);
    ("fig8", "two-phase commit", Fig8.run);
    ("table4", "IP loopback", Table4.run);
    ("fig9", "compute-bound workloads", Fig9.run);
    ("polling", "cost-of-polling model (5.2)", Polling.run);
    ("net", "IO workloads (5.4): echo, web, web+sql", Net_bench.run);
    ("ablation", "ablations: page tables, barriers, prefetch", Ablation.run);
    ("scaling", "scaling extension: mesh machines to 128 cores", Scaling.run);
    ("large", "large machines: tree/mesh/bands sweeps to 1024 cores (--large)", Large.run);
    ("place_rr", "placement baseline: naive round-robin", Placement.run_rr);
    ("place_skb", "placement: SKB comm-graph driven", Placement.run_skb);
    ("micro", "bechamel simulator micro-benches", Micro.run);
    ("chaos", "fault injection: detection/recovery/goodput (5 nines drill)", Chaos.run);
    ("cluster", "cluster serving: machines behind an LB, latency vs. load", Cluster_bench.run);
  ]

type timing = {
  name : string;
  wall_s : float;
  executed : int;  (* scheduler events actually dispatched *)
  fused : int;  (* latency charges coalesced away by Engine.charge *)
  barriers : int;  (* PDES window barriers (0 unless the bench sharded) *)
  shards : int;  (* PDES shard count, high-water (0 unless the bench sharded) *)
  wire_batches : int;  (* coalescable wire flush groups (0: no wire links) *)
  wire_msgs : int;  (* frames inside those groups *)
  minor_words : float;
  promoted_words : float;
  major_collections : int;
}

(* The logical simulated-event count: what the bench would have cost
   without latency-charge fusion. This is the comparable figure across
   fused and unfused runs (and against pre-fusion baselines). *)
let logical t = t.executed + t.fused

(* Run one bench, capturing wall-clock, the simulated events it cost and
   what it allocated. The [Pool.total_*] counters are the bench's own even
   when siblings run on other domains: they read this domain's engine/GC
   counters plus whatever its *nested* pool runs absorbed from worker
   domains, so a bench that shards (chaos, scaling, micro, ...) still
   reports its full event and allocation cost. *)
let instrumented name f () =
  let ev0 = Pool.total_executed () in
  let fu0 = Pool.total_fused () in
  let ba0 = Pool.total_barriers () in
  let wb0 = Pool.total_wire_batches () in
  let wm0 = Pool.total_wire_msgs () in
  let mi0 = Pool.total_minor_words () in
  let pr0 = Pool.total_promoted_words () in
  let ma0 = Pool.total_major_collections () in
  let t0 = Unix.gettimeofday () in
  let (), shards = Pool.with_shards f in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    name;
    wall_s;
    executed = Pool.total_executed () - ev0;
    fused = Pool.total_fused () - fu0;
    barriers = Pool.total_barriers () - ba0;
    shards;
    wire_batches = Pool.total_wire_batches () - wb0;
    wire_msgs = Pool.total_wire_msgs () - wm0;
    minor_words = Pool.total_minor_words () -. mi0;
    promoted_words = Pool.total_promoted_words () -. pr0;
    major_collections = Pool.total_major_collections () - ma0;
  }

(* How this bench's work was executed, for the like-for-like comparison in
   compare.ml: a bench that ran PDES window barriers on a parallel domain
   team is "pdes" (its wall-clock depends on MK_PDES/--pdes; with one
   domain the sharded loop runs inline and stays comparable to serial
   baselines), else pooled runs are "pool" and single-domain runs
   "serial". *)
let mode ~jobs t =
  if t.barriers > 0 && Pdes.configured_domains () > 1 then "pdes"
  else if jobs > 1 then "pool"
  else "serial"

let rate events wall_s = if wall_s > 0.0 then float_of_int events /. wall_s else 0.0

let json_path = "BENCH_sim.json"

let report ~jobs ~timings ~harness_wall =
  Printf.printf "\n==== Simulator performance (host side) ====\n";
  Printf.printf "%-10s %9s %12s %10s %9s %12s %12s %6s\n" "bench" "wall(s)" "events"
    "fused" "barriers" "events/s" "minorMw" "majGC";
  List.iter
    (fun t ->
      Printf.printf "%-10s %9.3f %12d %10d %9d %12.2e %12.1f %6d\n" t.name t.wall_s
        (logical t) t.fused t.barriers
        (rate (logical t) t.wall_s)
        (t.minor_words /. 1e6) t.major_collections)
    timings;
  let total_events = List.fold_left (fun a t -> a + logical t) 0 timings in
  Printf.printf "%-10s %9.3f %12d %10s %12.2e  (%d job%s)\n" "total" harness_wall
    total_events ""
    (rate total_events harness_wall)
    jobs
    (if jobs = 1 then "" else "s");
  (* Merge into the existing file rather than overwriting, so a partial
     run (e.g. `-j 2 micro table1`) refreshes only the benches that ran
     and keeps the rest of the record intact. *)
  let fresh =
    List.map
      (fun t ->
        {
          Bench_json.name = t.name;
          wall_s = t.wall_s;
          events = logical t;
          executed = t.executed;
          fused = t.fused;
          barriers = t.barriers;
          shards = t.shards;
          cluster_machines =
            (if t.name = "cluster" then Cluster_bench.reported_machines () else 0);
          wire_batches = t.wire_batches;
          wire_msgs = t.wire_msgs;
          mode = mode ~jobs t;
          gc =
            Some
              {
                Bench_json.minor_words = t.minor_words;
                promoted_words = t.promoted_words;
                major_collections = t.major_collections;
              };
          jobs;
        })
      timings
  in
  let merged = Bench_json.merge ~existing:(Bench_json.read json_path) ~fresh in
  Bench_json.write json_path ~jobs merged;
  Printf.printf "written to %s (%d bench%s merged)\n%!" json_path (List.length merged)
    (if List.length merged = 1 then "" else "es")

let usage () =
  Printf.eprintf
    "usage: main.exe [-j N] [--seed N] [--pdes N] [--large] [--cluster-smoke] [list \
     | all | <bench>...]\n\
    \       benches: %s\n"
    (String.concat " " (List.map (fun (n, _, _) -> n) all));
  exit 1

(* Pull the flag arguments (`--seed N` chaos replay, `--pdes N` PDES
   domain count, `--large` 256-core scaling point) out of the argument
   list wherever they appear. *)
let rec extract_flags acc = function
  | "--seed" :: n :: rest ->
    (match int_of_string_opt n with
     | Some s ->
       Chaos.seed_override := Some s;
       extract_flags acc rest
     | None -> usage ())
  | "--pdes" :: n :: rest ->
    (match int_of_string_opt n with
     | Some d when d >= 1 ->
       Pdes.set_domains_override (Some d);
       extract_flags acc rest
     | _ -> usage ())
  | "--large" :: rest ->
    Scaling.large := true;
    Cluster_bench.large := true;
    Large.large := true;
    extract_flags acc rest
  | "--cluster-smoke" :: rest ->
    Cluster_bench.smoke := true;
    extract_flags acc rest
  | a :: rest -> extract_flags (a :: acc) rest
  | [] -> List.rev acc

let () =
  let args = Array.to_list Sys.argv |> List.tl |> extract_flags [] in
  let jobs, args =
    match args with
    | "-j" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> (j, rest)
       | _ -> usage ())
    | _ -> (1, args)
  in
  match args with
  | [ "list" ] ->
    List.iter (fun (name, doc, _) -> Printf.printf "%-8s %s\n" name doc) all
  | names ->
    let selected =
      match names with
      | [] | [ "all" ] -> all
      | names ->
        List.map
          (fun name ->
            match List.find_opt (fun (n, _, _) -> n = name) all with
            | Some b -> b
            | None ->
              Printf.eprintf "unknown bench %S (try `list`)\n" name;
              exit 1)
          names
    in
    (* One ambient pool for the whole run: top-level benches are its jobs,
       and sweep benches shard through it via nested Pool.run. [jobs] = 1
       installs no pool, so everything runs inline on this domain. micro
       runs after the pool has joined — bechamel's GC stabilization
       aborts if any other domain allocates concurrently (micro.ml) — and
       runs last in serial mode too so output order matches any -j. *)
    let pooled, serial_tail =
      List.partition (fun (name, _, _) -> name <> "micro") selected
    in
    let pool = if jobs > 1 then Some (Pool.create ~jobs) else None in
    Pool.set_ambient pool;
    let jobs_used = match pool with None -> 1 | Some p -> Pool.size p in
    let t0 = Unix.gettimeofday () in
    let timings = Pool.run (List.map (fun (name, _, f) -> instrumented name f) pooled) in
    Pool.set_ambient None;
    Option.iter Pool.shutdown pool;
    let tail_timings =
      List.map (fun (name, _, f) -> instrumented name f ()) serial_tail
    in
    let harness_wall = Unix.gettimeofday () -. t0 in
    report ~jobs:jobs_used ~timings:(timings @ tail_timings) ~harness_wall
