(* §5.2 "The cost of polling": the analytic model — poll for P cycles
   before blocking at cost C; overhead <= 2C and latency <= C when P = C —
   checked against simulated arrivals with the real URPC poll-then-block
   receive path. *)

open Mk_sim
open Mk_hw
open Mk

(* C on the paper's hardware is ~6000 cycles (context switch + kernel
   wakeup path, excluding TLB pollution). *)
let c_cost = 6000

let model_overhead ~p ~c ~t = if t <= p then t else p + c

let simulate_arrival plat ~arrival_delay =
  let m = Machine.create plat in
  let ch = Urpc.create m ~sender:1 ~receiver:0 ~name:"poll.ch" () in
  let overhead = ref 0 in
  Engine.spawn m.Machine.eng ~name:"poll.recv" (fun () ->
      let t0 = Engine.now_ () in
      ignore (Urpc.recv_blocking ch ~poll_cycles:c_cost ~wakeup_cost:c_cost : int);
      (* Overhead = time from start of receive to message processed, minus
         the unavoidable arrival wait. *)
      overhead := Engine.now_ () - t0 - arrival_delay);
  Engine.spawn m.Machine.eng ~name:"poll.send" (fun () ->
      Engine.wait arrival_delay;
      Urpc.send ch 42);
  Machine.run m;
  !overhead

let run () =
  Common.hr "Section 5.2: the cost of polling (P = C = 6000 cycles)";
  Common.printf "%12s %16s %18s\n" "arrival t" "model overhead" "simulated overhead";
  List.iter
    (fun t ->
      let model = model_overhead ~p:c_cost ~c:c_cost ~t in
      let sim = simulate_arrival Platform.amd_4x4 ~arrival_delay:t in
      Common.printf "%12d %16d %18d\n%!" t model sim)
    [ 0; 1000; 3000; 5999; 6001; 9000; 20000 ];
  Common.printf "Model bounds: overhead <= 2C = %d; latency <= C = %d\n%!" (2 * c_cost)
    c_cost
