(* Figure 8: two-phase commit on the 8x4-core AMD — single-operation
   latency of a distributed capability retype vs amortized cost when
   pipelining many operations. *)

open Mk_sim
open Mk_hw
open Mk

let iters = 20
let pipeline_depth = 16

let points plat ~ncores =
  let os = Os.boot plat in
  let members = List.init ncores Fun.id in
  Os.run os (fun () ->
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members in
      (* Single-operation latency. *)
      let single = Stats.create () in
      for _ = 1 to iters do
        let t0 = Engine.now_ () in
        let (_ : bool) = Monitor.agree mon ~plan ~op:Monitor.Ag_noop in
        Stats.add_int single (Engine.now_ () - t0)
      done;
      (* Pipelined: issue a window of agreements, amortize. *)
      let t0 = Engine.now_ () in
      let rounds = 6 in
      for _ = 1 to rounds do
        let ivs =
          List.init pipeline_depth (fun _ ->
              Monitor.agree_async mon ~plan ~op:Monitor.Ag_noop)
        in
        List.iter (fun iv -> ignore (Sync.Ivar.read iv : bool)) ivs
      done;
      let per_op = (Engine.now_ () - t0) / (rounds * pipeline_depth) in
      (Stats.mean single, float_of_int per_op))

let run () =
  Common.hr "Figure 8: two-phase commit (8x4-core AMD)";
  let plat = Platform.amd_8x4 in
  let counts = Common.core_counts ~max_cores:(Platform.n_cores plat) in
  Common.printf "%5s %16s %18s\n" "cores" "single-op" "cost-pipelined";
  List.iter
    (fun n ->
      let single, piped = points plat ~ncores:n in
      Common.printf "%5d %16.0f %18.0f\n%!" n single piped)
    counts
