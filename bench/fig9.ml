(* Figure 9: compute-bound workloads on the 4x4-core AMD — NAS OpenMP
   CG/FT/IS and SPLASH-2 Barnes-Hut/radiosity, Barrelfish user-level
   threads vs Linux in-kernel threads. Cycle counts in units of 10^8. *)

open Mk_hw
open Mk_apps

let apps =
  [
    ("CG (conjugate gradient)", Nas.cg);
    ("FT (3D FFT)", Nas.ft);
    ("IS (integer sort)", Nas.is_sort);
    ("Barnes-Hut", Splash.barnes_hut);
    ("radiosity", Splash.radiosity);
  ]

(* The Barrelfish column boots sharded (one shard per package of the
   4x4): the structure is fixed, so the numbers are byte-identical whether
   the windows execute serially or on an MK_PDES/--pdes domain team. The
   Linux baseline stays a single machine — a monolithic kernel has no
   shardable cut. *)
let barrelfish_cycles app ~ncores =
  let os =
    Mk.Os.boot ~shards:4 ~measure_latencies:Mk.Os.No_measure Platform.amd_4x4
  in
  let rt = Runtime.barrelfish os in
  Mk.Os.run os (fun () -> app rt ~cores:(List.init ncores Fun.id))

let linux_cycles app ~ncores =
  let m = Machine.create Platform.amd_4x4 in
  let mono = Mk_baseline.Monolithic.create m in
  let rt = Runtime.linux mono in
  let result = ref 0 in
  Mk_sim.Engine.spawn m.Machine.eng ~name:"fig9.linux" (fun () ->
      result := app rt ~cores:(List.init ncores Fun.id));
  Machine.run m;
  !result

let run () =
  Common.hr "Figure 9: compute-bound workloads (4x4-core AMD; cycles x 10^8)";
  let counts = Common.core_counts ~max_cores:16 in
  (* Every (app, core count) point boots its own machines: one pool job
     each, both runtime columns inside the job. *)
  let cells =
    Mk_sim.Pool.run
      (List.concat_map
         (fun (_, app) ->
           List.map
             (fun n () ->
               (barrelfish_cycles app ~ncores:n, linux_cycles app ~ncores:n))
             counts)
         apps)
    |> Array.of_list
  in
  List.iteri
    (fun ai (name, _) ->
      Common.sub name;
      Common.printf "%5s %14s %14s\n" "cores" "Barrelfish" "Linux";
      List.iteri
        (fun ci n ->
          let b, l = cells.((ai * List.length counts) + ci) in
          Common.printf "%5d %14.2f %14.2f\n%!" n
            (float_of_int b /. 1e8)
            (float_of_int l /. 1e8))
        counts)
    apps
