(* Cluster serving sweep: latency percentiles vs. offered load across
   cluster sizes, saturation throughput per size, and the intra- vs.
   inter-machine traffic breakdown. Results land in CLUSTER_sim.json.

   Each cell is an independent simulated datacenter (its own PDES over
   machines + 2 shards), so cells are pool jobs like chaos seeds: rows
   print inside the job into its replay buffer and the transcript is
   byte-identical serial, under `-j N` and under MK_PDES — the executor
   placement never leaks into simulated results.

   The closed-loop population scales to a million concurrent users on the
   4-machine cluster: a million users thinking ~0.9 s between requests
   offer ~1.1M req/s against ~1.3M req/s of cluster capacity, and the
   load generator's memory is proportional to requests in flight, not
   users. `--cluster-smoke` bounds the sweep for CI (2 machines, small
   populations); `--large` extends it (8-machine million-user cell). *)

open Mk_sim
open Mk_cluster

let smoke = ref false
let large = ref false

type cell = {
  c_machines : int;
  c_policy : Lb.policy;
  c_users : int;
  c_think : int;
  c_warmup : int;
  c_window : int;
}

(* ~9 ms of thinking at 2.8 GHz: short enough that a window of a few
   simulated milliseconds sees every user, long enough that the offered
   load per user is modest. *)
let think_sweep = 25_000_000
let warmup_sweep = 6_000_000
let window_sweep = 20_000_000

let sweep_cell ?(policy = Lb.Consistent_hash) ~machines ~users () =
  {
    c_machines = machines;
    c_policy = policy;
    c_users = users;
    c_think = think_sweep;
    c_warmup = warmup_sweep;
    c_window = window_sweep;
  }

(* A million users at ~1.1 req/s each: offered ≈ capacity on 4 machines.
   The window spans a full think cycle so every user participates. *)
let million_cell ~machines =
  {
    c_machines = machines;
    c_policy = Lb.Consistent_hash;
    c_users = 1_000_000;
    c_think = 2_500_000_000;
    c_warmup = 250_000_000;
    c_window = 2_500_000_000;
  }

let cells () =
  if !smoke then
    [ sweep_cell ~machines:2 ~users:500 (); sweep_cell ~machines:2 ~users:4_000 () ]
  else
    let loads = [ 1_000; 4_000; 16_000 ] in
    List.concat_map
      (fun m -> List.map (fun upm -> sweep_cell ~machines:m ~users:(upm * m) ()) loads)
      [ 1; 2; 4; 8 ]
    @ [
        sweep_cell ~policy:Lb.Round_robin ~machines:4 ~users:12_000 ();
        sweep_cell ~policy:Lb.Least_outstanding ~machines:4 ~users:12_000 ();
      ]
    @ [ million_cell ~machines:4 ]
    @ (if !large then [ million_cell ~machines:8 ] else [])

(* The headline scale of this run, recorded per BENCH_sim.json entry so
   compare.ml only diffs like against like. *)
let reported_machines () =
  List.fold_left (fun a c -> max a c.c_machines) 0 (cells ())

let run_cell c =
  let cl =
    Cluster.create (Cluster.default_config ~policy:c.c_policy ~machines:c.c_machines ())
  in
  ( c,
    Cluster.run_load cl ~users:c.c_users ~think:c.c_think ~warmup:c.c_warmup
      ~window:c.c_window )

let json_path = "CLUSTER_sim.json"

let write_json results =
  let oc = open_out json_path in
  (* v2 adds per-cell [wire_batches]/[wire_msgs]: coalescable wire flush
     groups and the frames inside them. Machine_link counts both whether
     or not batching is on, so the JSON stays byte-identical under
     MK_NO_WIRE_BATCH=1 — the wire-batch referee diffs this file. *)
  Printf.fprintf oc "{\n  \"schema\": \"cluster_sim/v2\",\n  \"cells\": [\n";
  let last = List.length results - 1 in
  List.iteri
    (fun i (c, r) ->
      Printf.fprintf oc
        "    {\"machines\": %d, \"policy\": \"%s\", \"users\": %d, \"think\": %d, \
         \"window\": %d, \"users_started\": %d, \"offered\": %d, \"offered_rps\": \
         %.0f, \"completed\": %d, \"shed\": %d, \"throughput_rps\": %.0f, \"p50\": \
         %d, \"p99\": %d, \"p999\": %d, \"max\": %d, \"mean\": %.1f, \
         \"inter_frames\": %d, \"inter_bytes\": %d, \"wire_batches\": %d, \
         \"wire_msgs\": %d, \"intra_msgs\": %d, \
         \"intra_bytes\": %d, \"session_entries\": %d}%s\n"
        c.c_machines
        (Lb.policy_name c.c_policy)
        c.c_users c.c_think c.c_window r.Cluster.r_users_started r.Cluster.r_offered
        r.Cluster.r_offered_rps r.Cluster.r_completed r.Cluster.r_shed
        r.Cluster.r_throughput_rps r.Cluster.r_p50 r.Cluster.r_p99 r.Cluster.r_p999
        r.Cluster.r_max r.Cluster.r_mean r.Cluster.r_inter_frames
        r.Cluster.r_inter_bytes r.Cluster.r_wire_batches r.Cluster.r_wire_msgs
        r.Cluster.r_intra_msgs r.Cluster.r_intra_bytes
        r.Cluster.r_session_entries
        (if i = last then "" else ","))
    results;
  (* Saturation throughput per cluster size: the best served rate any cell
     of that size reached (the heavy cells run well past saturation). *)
  let sizes =
    List.sort_uniq compare (List.map (fun (c, _) -> c.c_machines) results)
  in
  Printf.fprintf oc "  ],\n  \"saturation\": [\n";
  let last = List.length sizes - 1 in
  List.iteri
    (fun i m ->
      let best =
        List.fold_left
          (fun a (c, r) ->
            if c.c_machines = m then max a r.Cluster.r_throughput_rps else a)
          0.0 results
      in
      Printf.fprintf oc "    {\"machines\": %d, \"throughput_rps\": %.0f}%s\n" m best
        (if i = last then "" else ","))
    sizes;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run () =
  Common.hr "cluster: serving latency/throughput across machines behind an LB";
  Common.printf "%-4s %-3s %9s %12s %12s %6s %10s %10s %10s %9s\n" "m" "pol" "users"
    "offered/s" "served/s" "shed%" "p50(cyc)" "p99(cyc)" "p999(cyc)" "inter(KB)";
  let results =
    Pool.run
      (List.map
         (fun c () ->
           let c, r = run_cell c in
           let issued_done = r.Cluster.r_completed + r.Cluster.r_shed in
           Common.printf "%-4d %-3s %9d %12.0f %12.0f %6.1f %10d %10d %10d %9d\n"
             c.c_machines
             (Lb.policy_name c.c_policy)
             c.c_users r.Cluster.r_offered_rps r.Cluster.r_throughput_rps
             (if issued_done = 0 then 0.0
              else 100.0 *. float_of_int r.Cluster.r_shed /. float_of_int issued_done)
             r.Cluster.r_p50 r.Cluster.r_p99 r.Cluster.r_p999
             (r.Cluster.r_inter_bytes / 1024);
           (c, r))
         (cells ()))
  in
  write_json results;
  let total_users = List.fold_left (fun a (c, _) -> a + c.c_users) 0 results in
  Common.printf "cluster: %d cell(s), %d simulated users swept; written to %s\n"
    (List.length results) total_users json_path
