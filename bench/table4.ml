(* Table 4: IP loopback on the 2x2-core AMD — Barrelfish's two user-space
   stacks over URPC vs the in-kernel shared-memory loopback path.
   Reports throughput, D-cache misses/packet, and HyperTransport
   dwords/packet in each direction plus link utilization. *)

open Mk_sim
open Mk_hw
open Mk_net

let payload = 1000
let packets = 400
let src_core = 0
let sink_core = 2 (* different package, as in the paper *)

type numbers = {
  mbps : float;
  dmiss_per_pkt : float;
  fwd_dwords : float;  (* source -> sink *)
  rev_dwords : float;  (* sink -> source *)
  fwd_util : float;
  rev_util : float;
}

(* Link utilization: dwords moved per cycle relative to a HT link's
   capacity. A 1 GHz 16-bit HT link moves ~2 GB/s ~ 0.18 dwords per
   2.8 GHz CPU cycle. *)
let link_dwords_per_cycle = 0.18

(* The 2x2 machine has one HT link; packages 0 (source) and 1 (sink).
   Traffic is recorded per direction of travel. *)
let direction_split (snap : Perfcounter.snap) =
  let fwd = float_of_int (Perfcounter.dwords_on snap (0, 1)) in
  let rev = float_of_int (Perfcounter.dwords_on snap (1, 0)) in
  (fwd, rev)

let finish m ~elapsed ~snap0 =
  let snap1 = Perfcounter.snapshot m.Machine.counters in
  let d = Perfcounter.diff snap1 snap0 in
  (* Per-packet misses at the sink core (the consumer-side cost the paper's
     PMC measurement reflects). *)
  let misses = d.Perfcounter.dcache_miss.(sink_core) in
  let fwd, rev = direction_split d in
  let plat = m.Machine.plat in
  let seconds = float_of_int elapsed /. (plat.Platform.ghz *. 1e9) in
  {
    mbps = float_of_int (packets * payload * 8) /. seconds /. 1e6;
    dmiss_per_pkt = float_of_int misses /. float_of_int packets;
    fwd_dwords = fwd /. float_of_int packets;
    rev_dwords = rev /. float_of_int packets;
    fwd_util = fwd /. float_of_int elapsed /. link_dwords_per_cycle;
    rev_util = rev /. float_of_int elapsed /. link_dwords_per_cycle;
  }

let barrelfish () =
  let m = Machine.create Platform.amd_2x2 in
  let nif_a, nif_b = Stack.connect_urpc m ~core_a:src_core ~core_b:sink_core () in
  let sa = Stack.create m ~core:src_core nif_a in
  let sb = Stack.create m ~core:sink_core nif_b in
  let sock_a = Stack.udp_bind sa ~port:7000 in
  let sock_b = Stack.udp_bind sb ~port:7001 in
  let elapsed = ref 0 in
  let snap0 = ref (Perfcounter.snapshot m.Machine.counters) in
  Engine.spawn m.Machine.eng ~name:"t4.sink" (fun () ->
      let t0 = ref 0 in
      for i = 1 to packets do
        let (_p : Pbuf.t), _from = Stack.udp_recvfrom sock_b in
        (* The payload arrived in the channel's cache-line messages, which
           the receive path already fetched; reading it is cache-hot. *)
        if i = 1 then t0 := Engine.now_ ();
        if i = packets then elapsed := Engine.now_ () - !t0
      done);
  Engine.spawn m.Machine.eng ~name:"t4.source" (fun () ->
      snap0 := Perfcounter.snapshot m.Machine.counters;
      for _ = 1 to packets do
        let p = Pbuf.alloc m ~size:payload () in
        (* Generator writes its payload. *)
        Pbuf.touch p m ~core:src_core ~write:true;
        Stack.udp_sendto sock_a ~dst_ip:(Stack.ip sb) ~dst_port:7001 p
      done);
  Machine.run m;
  finish m ~elapsed:!elapsed ~snap0:!snap0

let linux () =
  let m = Machine.create Platform.amd_2x2 in
  let lo = Kernel_loopback.create m in
  let elapsed = ref 0 in
  let snap0 = ref (Perfcounter.snapshot m.Machine.counters) in
  Engine.spawn m.Machine.eng ~name:"t4.sink" (fun () ->
      let t0 = ref 0 in
      for i = 1 to packets do
        let p = Kernel_loopback.recvfrom lo ~core:sink_core in
        Pbuf.touch p m ~core:sink_core ~write:false;
        if i = 1 then t0 := Engine.now_ ();
        if i = packets then elapsed := Engine.now_ () - !t0
      done);
  Engine.spawn m.Machine.eng ~name:"t4.source" (fun () ->
      snap0 := Perfcounter.snapshot m.Machine.counters;
      for _ = 1 to packets do
        let p = Pbuf.alloc m ~size:payload () in
        Pbuf.touch p m ~core:src_core ~write:true;
        Kernel_loopback.sendto lo ~core:src_core p
      done);
  Machine.run m;
  finish m ~elapsed:!elapsed ~snap0:!snap0

let run () =
  Common.hr "Table 4: IP loopback (2x2-core AMD)";
  let b = barrelfish () in
  let l = linux () in
  Common.printf "%-38s %12s %12s\n" "" "Barrelfish" "Linux";
  Common.printf "%-38s %12.0f %12.0f\n" "Throughput (Mbit/s)" b.mbps l.mbps;
  Common.printf "%-38s %12.1f %12.1f\n" "Dcache misses per packet" b.dmiss_per_pkt
    l.dmiss_per_pkt;
  Common.printf "%-38s %12.0f %12.0f\n" "source->sink HT traffic (dwords/pkt)"
    b.fwd_dwords l.fwd_dwords;
  Common.printf "%-38s %12.0f %12.0f\n" "sink->source HT traffic (dwords/pkt)"
    b.rev_dwords l.rev_dwords;
  Common.printf "%-38s %11.1f%% %11.1f%%\n" "source->sink HT link utilization"
    (100.0 *. b.fwd_util) (100.0 *. l.fwd_util);
  Common.printf "%-38s %11.1f%% %11.1f%%\n%!" "sink->source HT link utilization"
    (100.0 *. b.rev_util) (100.0 *. l.rev_util)
