(* Table 2: URPC single-message latency and sustained pipelined throughput
   (queue depth 16) between core pairs of each cache relationship. *)

open Mk_sim
open Mk_hw
open Mk

let lat_iters = 60
let tput_msgs = 600

(* Pick a (sender, receiver) pair exhibiting the given relationship. *)
let pair_with plat ~relationship =
  let n = Platform.n_cores plat in
  let pairs = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then pairs := (a, b) :: !pairs
    done
  done;
  let ok (a, b) =
    match relationship with
    | `Shared -> Platform.shares_cache plat a b
    | `Hops h ->
      (not (Platform.shares_cache plat a b)) && Platform.hops_between plat a b = h
  in
  List.find_opt ok (List.rev !pairs)

let relationships plat =
  let d = Topology.diameter plat.Platform.topo in
  let base = [ ("shared", `Shared) ] in
  let hops =
    List.filter_map
      (fun h ->
        if h <= d then Some ((if h = 1 then "one-hop" else Printf.sprintf "%d-hop" h), `Hops h)
        else None)
      [ 1; 2; 3 ]
  in
  (* Keep the paper's naming for the 2-socket machines. *)
  match plat.Platform.name with
  | "2x4-core Intel" -> [ ("shared", `Shared); ("non-shared", `Hops 1) ]
  | "2x2-core AMD" -> [ ("same die", `Shared); ("one-hop", `Hops 1) ]
  | _ -> base @ hops

let ping_pong m ~src ~dst =
  let fwd = Urpc.create m ~sender:src ~receiver:dst ~name:"t2.fwd" () in
  let bwd = Urpc.create m ~sender:dst ~receiver:src ~name:"t2.bwd" () in
  Engine.spawn m.Machine.eng ~name:"t2.echo" (fun () ->
      let rec loop () =
        let v = Urpc.recv fwd in
        Urpc.send bwd v;
        loop ()
      in
      loop ());
  let lat = Stats.create () in
  Engine.spawn m.Machine.eng ~name:"t2.pinger" (fun () ->
      for _ = 1 to 5 do
        Urpc.send fwd 0;
        ignore (Urpc.recv bwd : int)
      done;
      for _ = 1 to lat_iters do
        let t0 = Engine.now_ () in
        Urpc.send fwd 0;
        ignore (Urpc.recv bwd : int);
        Stats.add lat (float_of_int (Engine.now_ () - t0) /. 2.0)
      done);
  Machine.run m;
  lat

let throughput m ~src ~dst =
  (* One-way pipelined stream, 16-deep, with the prefetch variant. *)
  let ch = Urpc.create m ~sender:src ~receiver:dst ~slots:16 ~name:"t2.pipe" () in
  let elapsed = ref 0 in
  Engine.spawn m.Machine.eng ~name:"t2.sink" (fun () ->
      let t0 = ref 0 in
      for i = 1 to tput_msgs do
        ignore (Urpc.recv ch : int);
        if i = 50 then t0 := Engine.now_ ();
        if i = tput_msgs then elapsed := Engine.now_ () - !t0
      done);
  Engine.spawn m.Machine.eng ~name:"t2.source" (fun () ->
      for i = 1 to tput_msgs do
        Urpc.send ch i
      done);
  Machine.run m;
  float_of_int (tput_msgs - 50) /. (float_of_int !elapsed /. 1000.0)

let run () =
  Common.hr "Table 2: URPC performance";
  Common.printf "%-18s %-11s %9s %6s %8s %12s\n" "System" "Cache" "Latency" "(sd)" "ns"
    "msgs/kcycle";
  List.iter
    (fun plat ->
      List.iter
        (fun (label, rel) ->
          match pair_with plat ~relationship:rel with
          | None -> ()
          | Some (src, dst) ->
            let lat = ping_pong (Machine.create plat) ~src ~dst in
            let tput = throughput (Machine.create plat) ~src ~dst in
            Common.printf "%-18s %-11s %9.0f %6.0f %8.0f %12.2f\n%!" plat.Platform.name
              label (Stats.mean lat) (Stats.stddev lat)
              (Common.ns_of plat (int_of_float (Stats.mean lat)))
              tput)
        (relationships plat))
    Platform.all
