(* Figure 6: raw messaging cost of the four TLB-shootdown protocols on the
   8x4-core AMD system (no TLB invalidation, message round only). *)

open Mk_sim
open Mk_hw
open Mk

let rounds = 30

let one_point plat proto ~ncores =
  let m = Machine.create plat in
  let cores = List.init ncores Fun.id in
  let h = Shootdown.setup m ~proto ~root:0 ~cores () in
  let lat = Stats.create () in
  Engine.spawn m.Machine.eng ~name:"fig6.master" (fun () ->
      for _ = 1 to 5 do
        ignore (Shootdown.round h : int)
      done;
      for _ = 1 to rounds do
        Stats.add_int lat (Shootdown.round h)
      done);
  Machine.run m;
  Stats.mean lat

let run () =
  Common.hr "Figure 6: TLB shootdown protocols (8x4-core AMD)";
  let plat = Platform.amd_8x4 in
  let counts = Common.core_counts ~max_cores:(Platform.n_cores plat) in
  Common.printf "%5s %12s %12s %12s %12s\n" "cores" "Broadcast" "Unicast" "Multicast"
    "NUMA-Mcast";
  List.iter
    (fun n ->
      let v proto = one_point plat proto ~ncores:n in
      Common.printf "%5d %12.0f %12.0f %12.0f %12.0f\n%!" n (v Routing.Broadcast)
        (v Routing.Unicast) (v Routing.Multicast) (v Routing.Numa_multicast))
    counts
