(* Large-machine sweeps: the fig6/fig7/fig8 protocols on 256-, 512- and
   1024-core machines (§3.4's scalability goal pushed past the paper's
   hardware). Three interconnect families exercise the closed-form and
   lazy routing paths: deep NUMA trees and 2D meshes (no per-pair
   topology state at all) and heterogeneous latency bands (sparse link
   list, per-source BFS rows on demand).

   The 64-core point always runs so CI's byte-diff referees cover these
   code paths; the 256/512/1024 points ride behind `--large` (the nightly
   workflow). OS boots skip latency probing ([Os.No_measure]) — asserting
   n*(n-1) SKB facts is exactly the quadratic structure this sweep
   exists to keep out. *)

open Mk_sim
open Mk_hw
open Mk

let large = ref false

let shoot_warmup = 2
let shoot_rounds = 5
let unmap_rounds = 4
let twopc_rounds = 4
let vaddr = 0x600000

let sizes () = if !large then [ 64; 256; 512; 1024 ] else [ 64 ]

(* cores -> platform, per family. Packages of 4 cores throughout. *)
let families =
  [
    ("tree", fun ncores -> Platform.synthetic_tree ~packages:(ncores / 4) ~cores_per_package:4);
    ("mesh", fun ncores -> Platform.synthetic_mesh ~packages:(ncores / 4) ~cores_per_package:4);
    ( "bands",
      fun ncores ->
        (* Bands of 4 packages at 64 cores, 8 above: band count grows
           with the machine, so the latency staircase deepens. *)
        let packages = ncores / 4 in
        let ppb = if packages <= 16 then 4 else 8 in
        Platform.synthetic_bands ~bands:(packages / ppb) ~packages_per_band:ppb
          ~cores_per_package:4 );
  ]

(* fig6-style: raw shootdown messaging round (no broadcast — a shared
   line polled by 1023 slaves is the one protocol the paper already
   showed collapsing). *)
let shoot plat proto ~ncores =
  let m = Machine.create plat in
  let cores = List.init ncores Fun.id in
  let h = Shootdown.setup m ~proto ~root:0 ~cores () in
  let lat = Stats.create () in
  Engine.spawn m.Machine.eng ~name:"large.master" (fun () ->
      for _ = 1 to shoot_warmup do
        ignore (Shootdown.round h : int)
      done;
      for _ = 1 to shoot_rounds do
        Stats.add_int lat (Shootdown.round h)
      done);
  Machine.run m;
  Stats.mean lat

(* fig7-style: full OS unmap (monitor LRPC + NUMA-aware multicast + acks)
   over every core. The boot is where a quadratic structure would bite. *)
let unmap plat ~ncores =
  let os = Os.boot ~measure_latencies:Os.No_measure plat in
  Os.run os (fun () ->
      let cores = List.init ncores Fun.id in
      let dom = Os.spawn_domain os ~name:"large" ~cores in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr ~bytes:Types.page_size with
       | Ok _ -> ()
       | Error e -> Types.fail e);
      let s = Stats.create () in
      for _ = 1 to unmap_rounds do
        List.iter (fun c -> ignore (Vspace.touch (Dom.vspace dom) ~core:c ~vaddr)) cores;
        let t0 = Engine.now_ () in
        (match Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:false with
         | Ok () -> ()
         | Error e -> Types.fail e);
        Stats.add_int s (Engine.now_ () - t0);
        ignore (Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:true)
      done;
      Stats.mean s)

(* fig8-style: two-phase commit agreement over every core. *)
let twopc plat ~ncores =
  let os = Os.boot ~measure_latencies:Os.No_measure plat in
  Os.run os (fun () ->
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members:(List.init ncores Fun.id) in
      let s = Stats.create () in
      for _ = 1 to twopc_rounds do
        let t0 = Engine.now_ () in
        let (_ : bool) = Monitor.agree mon ~plan ~op:Monitor.Ag_noop in
        Stats.add_int s (Engine.now_ () - t0)
      done;
      Stats.mean s)

let run () =
  Common.hr "Large machines: shootdown / unmap / 2PC at 64-1024 cores";
  List.iter
    (fun (fname, plat_of) ->
      Common.sub fname;
      Common.printf "%6s %10s %10s %10s %12s %12s\n" "cores" "unicast" "mcast"
        "numa-mc" "unmap(cyc)" "2pc(cyc)";
      (* One pool job per (size, column): the 1024-core cells dominate. *)
      let cells =
        List.concat_map
          (fun ncores ->
            let plat = plat_of ncores in
            [
              (fun () -> shoot plat Routing.Unicast ~ncores);
              (fun () -> shoot plat Routing.Multicast ~ncores);
              (fun () -> shoot plat Routing.Numa_multicast ~ncores);
              (fun () -> unmap plat ~ncores);
              (fun () -> twopc plat ~ncores);
            ])
          (sizes ())
      in
      let v = Pool.run cells |> Array.of_list in
      List.iteri
        (fun i ncores ->
          Common.printf "%6d %10.0f %10.0f %10.0f %12.0f %12.0f\n%!" ncores
            v.((5 * i) + 0)
            v.((5 * i) + 1)
            v.((5 * i) + 2)
            v.((5 * i) + 3)
            v.((5 * i) + 4))
        (sizes ()))
    families
