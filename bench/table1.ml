(* Table 1: LRPC one-way latency (user program to user program) on all
   four test platforms. *)

open Mk_sim
open Mk_hw
open Mk

let iters = 50

let measure plat =
  let m = Machine.create plat in
  let driver = Cpu_driver.boot m ~core:0 in
  let ep = Lrpc.export driver ~name:"null-service" (fun () -> ()) in
  let lat = Stats.create () in
  Engine.spawn m.Machine.eng ~name:"lrpc.bench" (fun () ->
      for _ = 1 to iters do
        let t0 = Engine.now_ () in
        Lrpc.call ep ();
        (* A call is two one-way crossings. *)
        Stats.add lat (float_of_int (Engine.now_ () - t0) /. 2.0)
      done);
  Machine.run m;
  lat

let run () =
  Common.hr "Table 1: LRPC one-way latency";
  Common.printf "%-18s %10s %6s %8s\n" "System" "cycles" "(sd)" "ns";
  List.iter
    (fun plat ->
      let lat = measure plat in
      Common.printf "%-18s %10.0f %6.0f %8.0f\n%!" plat.Platform.name (Stats.mean lat)
        (Stats.stddev lat)
        (Common.ns_of plat (int_of_float (Stats.mean lat))))
    Platform.all
