(* Shared helpers for the paper-reproduction benches. *)

open Mk_sim
open Mk_hw

(* All bench output funnels through [printf], which is [Pool.emit]: inside
   a pool job the text lands in that job's replay buffer (emitted later in
   submission order); outside any pool it goes straight to stdout. This is
   what makes `-j N` output byte-identical to the serial run. *)
let redirect_to : Buffer.t -> (unit -> 'a) -> 'a = Pool.redirect_to

let printf fmt = Printf.ksprintf Pool.emit fmt

let hr title = printf "\n==== %s ====\n%!" title

let sub title = printf "-- %s --\n%!" title

let ns_of plat cycles = Platform.cycles_to_ns plat (float_of_int cycles)

(* Fixed-width row printing for paper-style tables. *)
let row fmt = printf fmt

(* Constant-space latency quantiles for the serving benches; re-exported
   here so every bench formats percentiles the same way and artifacts stay
   byte-comparable. *)
module Histogram = Stats.Histogram

let percentiles h =
  (Histogram.quantile h 0.50, Histogram.quantile h 0.99, Histogram.quantile h 0.999)

let core_counts ~max_cores =
  (* The paper's x axes step by 2 from 2 up to the machine size. *)
  let rec go n acc = if n > max_cores then List.rev acc else go (n + 2) (n :: acc) in
  go 2 []
