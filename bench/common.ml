(* Shared helpers for the paper-reproduction benches. *)

open Mk_hw

(* All bench output funnels through [printf] so the parallel runner can
   capture a bench's output into a per-domain buffer and replay it in
   deterministic order. Single-threaded runs write straight to stdout. *)
let out_key : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let redirect_to buf f =
  Domain.DLS.set out_key (Some buf);
  Fun.protect ~finally:(fun () -> Domain.DLS.set out_key None) f

let printf fmt =
  Printf.ksprintf
    (fun s ->
      match Domain.DLS.get out_key with
      | None ->
        print_string s;
        flush stdout
      | Some buf -> Buffer.add_string buf s)
    fmt

let hr title = printf "\n==== %s ====\n%!" title

let sub title = printf "-- %s --\n%!" title

let ns_of plat cycles = Platform.cycles_to_ns plat (float_of_int cycles)

(* Fixed-width row printing for paper-style tables. *)
let row fmt = printf fmt

let core_counts ~max_cores =
  (* The paper's x axes step by 2 from 2 up to the machine size. *)
  let rec go n acc = if n > max_cores then List.rev acc else go (n + 2) (n :: acc) in
  go 2 []
