(* Chaos suite: run the full OS + a failover-managed service under
   seeded fault plans and measure detection latency, recovery latency and
   goodput-under-faults. Every injected core stop must be detected and
   recovered within the bound implied by the heartbeat configuration, or
   the bench fails the run (so CI catches a broken failure detector).

   `main.exe chaos` sweeps a fixed set of seeds; `--seed N` replays one.
   Results land in CHAOS_sim.json. *)

open Mk_sim
open Mk_hw
open Mk_fault
open Mk
open Mk_apps

let seed_override : int option ref = ref None
let default_seeds = [ 0; 1; 2; 3; 4; 5; 6; 7 ]
let horizon = 2_000_000
let drain_slack = 400_000

(* Recovery = detection + announcement fan + dispatcher re-spawn + name
   service re-registration; generous slack over the detection bound. *)
let recovery_slack = 300_000

type seed_result = {
  sr_seed : int;
  sr_victims : int list;
  sr_detect_worst : int;  (* cycles, stop -> first detection *)
  sr_recover_worst : int;  (* cycles, stop -> service respawned *)
  sr_ok : int;  (* completed client calls *)
  sr_failed : int;  (* calls that exhausted failover polling *)
  sr_failovers : int;  (* client binding switches *)
  sr_respawns : int;
  sr_urpc_dropped : int;
  sr_urpc_duplicated : int;
  sr_urpc_delayed : int;
}

(* The OS under test boots sharded, one shard per package of the 4x4 —
   the same structure as every sharded boot, so the chaos numbers are
   byte-identical whether the windows run serially or on an MK_PDES /
   --pdes domain team. *)
let n_shards = 4

let run_seed seed =
  let plat = Platform.amd_4x4 in
  let n = Platform.n_cores plat in
  (* Core 0 hosts the name service; cores 0 and 1 host the clients. Those
     must survive for the run to be measurable, so stops draw from 2..n-1. *)
  let eligible = List.init (n - 2) (fun i -> i + 2) in
  let plan =
    Plan.generate ~seed ~victims:eligible ~packages:plat.Platform.n_packages
      ~horizon ()
  in
  let victims = Plan.victims plan in
  (* One injector per shard machine, all driven by the same plan: stops
     fire on the victim's own shard engine, and each shard rolls its URPC
     drop/dup/delay dice independently (seed mixed with the shard index). *)
  let injs =
    Array.init n_shards (fun s ->
        Injector.create ~plan ~seed:((seed * n_shards) + s) ())
  in
  let os =
    Os.boot ~shards:n_shards ~faults:injs ~measure_latencies:Os.No_measure plat
  in
  let sh = match Os.shard os with Some sh -> sh | None -> assert false in
  let ok = ref 0 and failed = ref 0 and failovers = ref 0 in
  let detect_worst = ref 0 and recover_worst = ref 0 in
  let respawns = ref 0 in
  Os.run os ~name:"chaos" (fun () ->
      let t0 = Engine.now_ () in
      let ft = Ft.attach ~until:(t0 + horizon + drain_slack) os in
      (* The service is homed on the first core the plan will stop, so
         every seed exercises the failover path, not just detection. *)
      let home = List.hd victims in
      let svc =
        Ft_service.start os ft ~name:"chaos.kv" ~home ~client_cores:[ 0; 1 ]
          (fun x ->
            Engine.wait 1_000;  (* simulated request processing *)
            (x * 2) + 1)
      in
      (* Arm each shard's injector from a task *on that shard* — scheduling
         stop events on a remote shard's engine mid-window would race the
         window executor. [only] keeps stop callbacks local: a victim's
         death fires on its own shard; the death announcement fan spreads
         the news. *)
      for s = 0 to n_shards - 1 do
        Os.call os ~core:(Shard.first_core sh s) (fun () ->
            Injector.arm
              ~only:(fun c -> Shard.shard_of_core sh c = s)
              injs.(s) (Shard.engine sh s))
      done;
      let done_box = Sync.Mailbox.create () in
      List.iter
        (fun c ->
          let cl = Ft_service.client svc ~core:c in
          Engine.spawn_ ~name:(Printf.sprintf "chaos.client%d" c) (fun () ->
              let rec loop i =
                if Engine.now_ () >= t0 + horizon then begin
                  failovers := !failovers + Ft_service.failovers cl;
                  Sync.Mailbox.send done_box ()
                end
                else begin
                  (match Ft_service.call cl i with
                  | Ok r ->
                    assert (r = (i * 2) + 1);
                    incr ok
                  | Error `Unavailable ->
                    incr failed;
                    Engine.wait 20_000);
                  Engine.wait 5_000;
                  loop (i + 1)
                end
              in
              loop 1))
        [ 0; 1 ];
      Sync.Mailbox.recv done_box;
      Sync.Mailbox.recv done_box;
      let bound = Ft.detection_bound ft in
      List.iter
        (fun v ->
          let stop =
            (* The victim's own shard's injector fired (and timed) its
               stop. *)
            match Injector.stop_time injs.(Shard.shard_of_core sh v) ~core:v with
            | Some s -> s
            | None -> failwith "chaos: victim without a stop time"
          in
          (match Ft.detected_at ft ~core:v with
          | None ->
            failwith
              (Printf.sprintf "chaos seed %d: core %d death NOT detected" seed v)
          | Some d ->
            let lat = d - stop in
            if lat > bound then
              failwith
                (Printf.sprintf
                   "chaos seed %d: core %d detection took %d cycles (bound %d)"
                   seed v lat bound);
            if lat > !detect_worst then detect_worst := lat);
          match Ft.recovered_at ft ~core:v with
          | None ->
            failwith
              (Printf.sprintf "chaos seed %d: core %d death NOT recovered" seed v)
          | Some r ->
            let lat = r - stop in
            if lat > bound + recovery_slack then
              failwith
                (Printf.sprintf
                   "chaos seed %d: core %d recovery took %d cycles (bound %d)"
                   seed v lat (bound + recovery_slack));
            if lat > !recover_worst then recover_worst := lat)
        victims;
      if !ok = 0 then
        failwith (Printf.sprintf "chaos seed %d: no client call completed" seed);
      if Ft_service.respawns svc = 0 then
        failwith
          (Printf.sprintf "chaos seed %d: service was never failed over" seed);
      respawns := Ft_service.respawns svc);
  (* URPC fault totals across all shard injectors. *)
  let sum f = Array.fold_left (fun a i -> a + f (Injector.stats i)) 0 injs in
  {
    sr_seed = seed;
    sr_victims = victims;
    sr_detect_worst = !detect_worst;
    sr_recover_worst = !recover_worst;
    sr_ok = !ok;
    sr_failed = !failed;
    sr_failovers = !failovers;
    sr_respawns = !respawns;
    sr_urpc_dropped = sum (fun st -> st.Injector.urpc_dropped);
    sr_urpc_duplicated = sum (fun st -> st.Injector.urpc_duplicated);
    sr_urpc_delayed = sum (fun st -> st.Injector.urpc_delayed);
  }

let json_path = "CHAOS_sim.json"

let write_json results =
  let oc = open_out json_path in
  let victims_str r =
    String.concat "," (List.map string_of_int r.sr_victims)
  in
  output_string oc "{\n  \"horizon\": ";
  output_string oc (string_of_int horizon);
  output_string oc ",\n  \"seeds\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"seed\": %d, \"victims\": [%s], \"detect_worst\": %d, \
         \"recover_worst\": %d, \"ok\": %d, \"failed\": %d, \"failovers\": %d, \
         \"respawns\": %d, \"urpc_dropped\": %d, \"urpc_duplicated\": %d, \
         \"urpc_delayed\": %d}%s\n"
        r.sr_seed (victims_str r) r.sr_detect_worst r.sr_recover_worst r.sr_ok
        r.sr_failed r.sr_failovers r.sr_respawns r.sr_urpc_dropped
        r.sr_urpc_duplicated r.sr_urpc_delayed
        (if i = List.length results - 1 then "" else ","))
    results;
  output_string oc "  ]\n}\n";
  close_out oc

let run () =
  let seeds =
    match !seed_override with Some s -> [ s ] | None -> default_seeds
  in
  Common.hr "chaos: detection/recovery/goodput under seeded fault plans";
  Common.printf "%-5s %-10s %12s %13s %7s %7s %5s %5s %5s %5s %5s\n" "seed"
    "victims" "detect(cyc)" "recover(cyc)" "ok" "failed" "fail/" "resp" "drop"
    "dup" "delay";
  (* One pool job per seed: each is an independent simulated world, and
     the row is printed *inside* the job (into its replay buffer), so the
     output stays in seed order regardless of which domain finished when. *)
  let results =
    Pool.run
      (List.map
         (fun seed () ->
           let r = run_seed seed in
           Common.printf "%-5d %-10s %12d %13d %7d %7d %5d %5d %5d %5d %5d\n"
             r.sr_seed
             (String.concat "," (List.map string_of_int r.sr_victims))
             r.sr_detect_worst r.sr_recover_worst r.sr_ok r.sr_failed
             r.sr_failovers r.sr_respawns r.sr_urpc_dropped r.sr_urpc_duplicated
             r.sr_urpc_delayed;
           r)
         seeds)
  in
  write_json results;
  Common.printf
    "chaos: %d seed(s), all failures detected and recovered in bound; written \
     to %s\n"
    (List.length results) json_path
