(* Compare a BENCH_sim.json against a committed baseline and warn when a
   bench's events/sec regressed by more than the threshold.

   Warn-only by default (always exits 0) so it can sit in CI without
   turning host-speed noise into red builds; `--strict` makes regressions
   fatal for local bisecting, and `--stable` gates CI on the long-running
   benches whose events/sec is stable enough to enforce (with a wide
   noise margin for shared runners).

     dune exec bench/compare.exe -- [--baseline FILE] [--current FILE]
                                    [--threshold PCT] [--strict] [--stable] *)

let default_baseline = "bench/BASELINE_sim.json"
let default_current = "BENCH_sim.json"

(* Benches long enough (tens of ms+) for events/sec to be a signal rather
   than scheduler noise. Excluded on purpose: micro (wall is bechamel's
   sampling quota, not simulation throughput), fig3/tables/polling/net/
   ablation (sub-50ms: one bad timeslice swings them far past any sane
   threshold). *)
(* cluster is gated too: its events/sec is noisy on shared runners but the
   25% margin holds, and its minor-words-per-event figure — the serving
   hot path's allocation diet — is deterministic and worth failing on.
   (The full sweep must have run: a `--cluster-smoke` entry is skipped by
   the cluster_machines mismatch rule, so CI runs `main.exe -- cluster`
   before comparing.) *)
let stable_benches = [ "fig6"; "fig7"; "fig8"; "fig9"; "scaling"; "chaos"; "cluster" ]
let stable_threshold = 25.0

let () =
  let baseline = ref default_baseline in
  let current = ref default_current in
  let threshold = ref 10.0 in
  let strict = ref false in
  let only = ref [] in
  let args =
    [
      ("--baseline", Arg.Set_string baseline, "FILE baseline json (default bench/BASELINE_sim.json)");
      ("--current", Arg.Set_string current, "FILE json to check (default BENCH_sim.json)");
      ("--threshold", Arg.Set_float threshold, "PCT warn above this regression (default 10)");
      ("--strict", Arg.Set strict, " exit 1 on regression instead of warning");
      ("--bench", Arg.String (fun n -> only := n :: !only),
       "NAME restrict the comparison to this bench (repeatable)");
      ( "--stable",
        Arg.Unit
          (fun () ->
            strict := true;
            threshold := stable_threshold;
            only := stable_benches),
        " gate on the stable long-running benches (strict, wide threshold)" );
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "compare.exe: diff bench events/sec against a committed baseline";
  let restrict entries =
    match !only with
    | [] -> entries
    | names ->
      List.filter
        (fun (e : Mk_benches.Bench_json.entry) -> List.mem e.name names)
        entries
  in
  let base = restrict (Mk_benches.Bench_json.read !baseline) in
  let cur = Mk_benches.Bench_json.read !current in
  if base = [] then (
    Printf.eprintf "compare: no baseline entries in %s\n" !baseline;
    exit (if !strict then 1 else 0));
  if cur = [] then (
    Printf.eprintf "compare: no current entries in %s\n" !current;
    exit (if !strict then 1 else 0));
  let regressions = ref 0 in
  (* Each baseline bench becomes a (sort key, line) row; the table prints
     worst delta first so the bench that regressed hardest tops the CI
     log. Missing / mode-mismatched rows carry no delta and sink to the
     bottom (infinity key, tie-broken by name). *)
  let rows =
    List.map
      (fun (b : Mk_benches.Bench_json.entry) ->
        match
          List.find_opt (fun (c : Mk_benches.Bench_json.entry) -> c.name = b.name) cur
        with
        | None ->
          ( infinity,
            Printf.sprintf "%-10s %14.0f %14s %9s %13s" b.name
              (Mk_benches.Bench_json.rate b) "-" "-" "-" )
        (* Only like-for-like execution modes compare: a "pdes" run's
           wall-clock depends on the domain count, a "pool" run's on -j.
           A mode mismatch is noted and skipped, never gated. *)
        | Some c when c.mode <> b.mode ->
          ( infinity,
            Printf.sprintf "%-10s %14.0f %14.0f %9s %13s  (mode %s vs %s: skipped)" b.name
              (Mk_benches.Bench_json.rate b) (Mk_benches.Bench_json.rate c) "-" "-" b.mode
              c.mode )
        (* Same idea for the sharding cut: a 4-shard run's wall-clock is not
           comparable to an unsharded (or differently sharded) baseline. *)
        | Some c when c.shards <> b.shards ->
          ( infinity,
            Printf.sprintf "%-10s %14.0f %14.0f %9s %13s  (shards %d vs %d: skipped)"
              b.name (Mk_benches.Bench_json.rate b) (Mk_benches.Bench_json.rate c) "-" "-"
              b.shards c.shards )
        (* And for the cluster sweep's scale knob: a 2-machine smoke run
           costs a tiny fraction of the 8-machine default sweep. *)
        | Some c when c.cluster_machines <> b.cluster_machines ->
          ( infinity,
            Printf.sprintf "%-10s %14.0f %14.0f %9s %13s  (cluster %d vs %d: skipped)"
              b.name (Mk_benches.Bench_json.rate b) (Mk_benches.Bench_json.rate c) "-" "-"
              b.cluster_machines c.cluster_machines )
        | Some c ->
          let rb = Mk_benches.Bench_json.rate b and rc = Mk_benches.Bench_json.rate c in
          let delta = if rb > 0.0 then (rc -. rb) /. rb *. 100.0 else 0.0 in
          let flag = delta < -.(!threshold) in
          if flag then incr regressions;
          (* Allocation comparison only when both files carry GC data (a v1
             baseline reads back with gc = None: skip rather than invent).
             Compared per simulated event: minor words per event is a
             deterministic property of the workload — unlike events/sec it
             does not move with host speed, so it regresses only when the
             code actually allocates more. *)
          let alloc_col, alloc_flag =
            match (b.gc, c.gc) with
            | Some gb, Some gc_
              when gb.minor_words > 0.0 && b.events > 0 && c.events > 0 ->
              let pb = gb.minor_words /. float_of_int b.events in
              let pc = gc_.minor_words /. float_of_int c.events in
              let d = (pc -. pb) /. pb *. 100.0 in
              (Printf.sprintf "%+.1f%% mw/ev" d, d > !threshold)
            | _ -> ("-", false)
          in
          if alloc_flag then incr regressions;
          ( delta,
            Printf.sprintf "%-10s %14.0f %14.0f %+8.1f%% %13s%s" b.name rb rc delta
              alloc_col
              (if flag then "  <-- REGRESSION"
               else if alloc_flag then "  <-- ALLOC REGRESSION"
               else "") ))
      base
  in
  Printf.printf "%-10s %14s %14s %9s %13s\n" "bench" "baseline ev/s" "current ev/s" "delta"
    "alloc";
  List.stable_sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.iter (fun (_, line) -> print_endline line);
  if !regressions > 0 then begin
    Printf.printf "compare: %d bench(es) regressed more than %.0f%% vs %s\n" !regressions
      !threshold !baseline;
    if !strict then exit 1
  end
  else Printf.printf "compare: no regression beyond %.0f%%\n" !threshold
