(* Figure 3: cost of updating shared state — shared memory vs message
   passing, on the 4x4-core AMD system.

   SHMk: k cores' threads directly update the same k cache lines; the
   cache-coherence protocol migrates the lines and the cost grows with
   both the number of writers and the lines touched.

   MSGk: clients send a one-line RPC to a server core that performs the
   k-line update locally and replies. The Server series is the service
   time measured at the server, excluding queueing. *)

open Mk_sim
open Mk_hw
open Mk

let ops_per_core = 120

let shm_case m ~ncores ~klines =
  let coh = m.Machine.coh in
  let cl = m.Machine.plat.Platform.cacheline in
  (* The shared lines live on core 0's node, like a malloc'd buffer. *)
  let base = Machine.alloc_lines m ~node:0 klines in
  let lat = Stats.create () in
  let done_box = Sync.Mailbox.create () in
  for core = 0 to ncores - 1 do
    Engine.spawn m.Machine.eng ~name:(Printf.sprintf "shm%d" core) (fun () ->
        (* Warmup to reach steady-state line bouncing. *)
        for _ = 1 to 10 do
          for j = 0 to klines - 1 do
            Coherence.store coh ~core (base + (j * cl))
          done
        done;
        for _ = 1 to ops_per_core do
          let t0 = Engine.now_ () in
          for j = 0 to klines - 1 do
            Coherence.store coh ~core (base + (j * cl))
          done;
          Stats.add_int lat (Engine.now_ () - t0)
        done;
        Sync.Mailbox.send done_box ())
  done;
  Engine.spawn m.Machine.eng ~name:"shm.join" (fun () ->
      for _ = 1 to ncores do
        Sync.Mailbox.recv done_box
      done);
  Machine.run m;
  Stats.mean lat

(* A small single-server RPC harness: per-client channel pairs, a unified
   arrival semaphore, round-robin service. *)
let msg_case m ~ncores ~klines =
  let nclients = ncores - 1 in
  let server = 0 in
  let coh = m.Machine.coh in
  let cl = m.Machine.plat.Platform.cacheline in
  let data = Machine.alloc_lines m ~node:0 klines in
  let lat = Stats.create () and server_time = Stats.create () in
  let arrivals = Sync.Semaphore.create 0 in
  let reqs =
    Array.init nclients (fun i ->
        let ch =
          Urpc.create m ~sender:(i + 1) ~receiver:server
            ~name:(Printf.sprintf "req%d" (i + 1))
            ()
        in
        Urpc.set_notify ch (fun () -> Sync.Semaphore.release arrivals);
        ch)
  in
  let replies =
    Array.init nclients (fun i ->
        Urpc.create m ~sender:server ~receiver:(i + 1)
          ~name:(Printf.sprintf "rep%d" (i + 1))
          ())
  in
  let total_ops = nclients * ops_per_core in
  (* Server: handle every request, round-robin over client channels. *)
  Engine.spawn m.Machine.eng ~name:"msg.server" (fun () ->
      let idx = ref 0 in
      for _ = 1 to total_ops do
        Sync.Semaphore.acquire arrivals;
        let rec find tries =
          if tries > nclients then None
          else begin
            let i = !idx mod nclients in
            incr idx;
            if Urpc.pending reqs.(i) > 0 then Some i else find (tries + 1)
          end
        in
        match find 1 with
        | None -> ()
        | Some i ->
          let t0 = Engine.now_ () in
          let (_ : int) = Urpc.recv reqs.(i) in
          for j = 0 to klines - 1 do
            Coherence.store coh ~core:server (data + (j * cl))
          done;
          Urpc.send replies.(i) 0;
          Stats.add_int server_time (Engine.now_ () - t0)
      done);
  let done_box = Sync.Mailbox.create () in
  for i = 0 to nclients - 1 do
    Engine.spawn m.Machine.eng ~name:(Printf.sprintf "msg.client%d" i) (fun () ->
        for _ = 1 to 5 do
          Urpc.send reqs.(i) 0;
          ignore (Urpc.recv replies.(i) : int)
        done;
        for _ = 1 to ops_per_core - 5 do
          let t0 = Engine.now_ () in
          Urpc.send reqs.(i) 0;
          ignore (Urpc.recv replies.(i) : int);
          Stats.add_int lat (Engine.now_ () - t0)
        done;
        Sync.Mailbox.send done_box ())
  done;
  Engine.spawn m.Machine.eng ~name:"msg.join" (fun () ->
      for _ = 1 to nclients do
        Sync.Mailbox.recv done_box
      done);
  Machine.run m;
  (Stats.mean lat, Stats.mean server_time)

let run () =
  Common.hr "Figure 3: shared memory vs message passing (4x4-core AMD)";
  let plat = Platform.amd_4x4 in
  let cores = Common.core_counts ~max_cores:(Platform.n_cores plat) in
  Common.printf
    "%5s  %9s %9s %9s %9s  %9s %9s %9s\n" "cores" "SHM1" "SHM2" "SHM4" "SHM8" "MSG1"
    "MSG8" "Server";
  List.iter
    (fun n ->
      let shm k = shm_case (Machine.create plat) ~ncores:n ~klines:k in
      let s1 = shm 1 and s2 = shm 2 and s4 = shm 4 and s8 = shm 8 in
      let m1, _ = msg_case (Machine.create plat) ~ncores:n ~klines:1 in
      let m8, srv = msg_case (Machine.create plat) ~ncores:n ~klines:8 in
      Common.printf "%5d  %9.0f %9.0f %9.0f %9.0f  %9.0f %9.0f %9.0f\n%!" n s1 s2 s4 s8
        m1 m8 srv)
    cores
