(* Ablations of the design choices DESIGN.md calls out:
   (a) page-table organization (§4.8): shared table vs lazily-filled
       replicas with TLB-fill tracking, as sharing narrows;
   (b) barrier implementation (§4.8/§5.3): shared-line spin vs message
       based vs futex, as the team grows;
   (c) URPC prefetch variant (§4.6): single-message latency vs pipelined
       throughput. *)

open Mk_sim
open Mk_hw
open Mk

let vaddr = 0x400000

(* -- (a) page tables -- *)

let unmap_with_mode pt_mode ~touchers =
  let os = Os.boot ~measure_latencies:Os.No_measure Platform.amd_8x4 in
  Os.run os (fun () ->
      let cores = List.init 32 Fun.id in
      let dom = Os.spawn_domain ~pt_mode os ~name:"abl" ~cores in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr ~bytes:Types.page_size with
       | Ok _ -> ()
       | Error e -> Types.fail e);
      let s = Stats.create () in
      for _ = 1 to 10 do
        List.iter
          (fun c -> ignore (Vspace.touch (Dom.vspace dom) ~core:c ~vaddr))
          (List.init touchers Fun.id);
        let t0 = Engine.now_ () in
        (match Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:false with
         | Ok () -> ()
         | Error e -> Types.fail e);
        Stats.add_int s (Engine.now_ () - t0);
        (match Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:true with
         | Ok () -> ()
         | Error e -> Types.fail e)
      done;
      Stats.mean s)

let page_table_touchers = [ 1; 2; 4; 8; 16; 32 ]

let page_tables () =
  Common.sub "(a) unmap on a 32-core domain vs cores actually using the page";
  Common.printf "%9s %14s %22s\n" "touchers" "shared table" "replicated+tracked";
  (* Each (touchers, mode) cell is an independent OS boot: shard the grid. *)
  let v =
    Pool.run
      (List.concat_map
         (fun k ->
           [
             (fun () -> unmap_with_mode Vspace.Shared_table ~touchers:k);
             (fun () ->
               unmap_with_mode (Vspace.Replicated { track_tlb_fills = true }) ~touchers:k);
           ])
         page_table_touchers)
    |> Array.of_list
  in
  List.iteri
    (fun i k -> Common.printf "%9d %14.0f %22.0f\n%!" k v.(2 * i) v.((2 * i) + 1))
    page_table_touchers

(* -- (b) barriers -- *)

let barrier_round impl ~ncores =
  let os = Os.boot ~measure_latencies:Os.No_measure Platform.amd_4x4 in
  let m = Os.machine os in
  Os.run os (fun () ->
      let cores = List.init ncores Fun.id in
      let dom = Os.spawn_domain os ~name:"bar" ~cores in
      let await =
        match impl with
        | `Spin ->
          let b = Threads.Barrier.create m ~parties:ncores in
          fun ~rank:_ ~core -> Threads.Barrier.await b ~core
        | `Msg ->
          let parties = List.mapi (fun i c -> (i, c)) cores in
          let b = Threads.Msg_barrier.create m ~coordinator:0 ~parties in
          fun ~rank ~core:_ -> Threads.Msg_barrier.await b ~party:rank
      in
      let rounds = 20 in
      let t0 = Engine.now_ () in
      let ths =
        List.mapi
          (fun rank core ->
            Threads.spawn m ~disp:(Dom.dispatcher_on dom core) (fun () ->
                for _ = 1 to rounds do
                  await ~rank ~core
                done))
          cores
      in
      List.iter Threads.join ths;
      (Engine.now_ () - t0) / rounds)

let futex_round ~ncores =
  let m = Machine.create Platform.amd_4x4 in
  let mono = Mk_baseline.Monolithic.create m in
  let result = ref 0 in
  Engine.spawn m.Machine.eng (fun () ->
      let b = Mk_baseline.Monolithic.Futex_barrier.create mono ~parties:ncores in
      let rounds = 20 in
      let t0 = Engine.now_ () in
      let ks =
        List.map
          (fun core ->
            Mk_baseline.Monolithic.spawn mono ~core (fun () ->
                for _ = 1 to rounds do
                  Mk_baseline.Monolithic.Futex_barrier.await b ~core
                done))
          (List.init ncores Fun.id)
      in
      List.iter (Mk_baseline.Monolithic.join mono) ks;
      result := (Engine.now_ () - t0) / rounds);
  Machine.run m;
  !result

let barrier_sizes = [ 2; 4; 8; 16 ]

let barriers () =
  Common.sub "(b) barrier round cost (4x4-core AMD, cycles)";
  Common.printf "%5s %12s %12s %12s\n" "cores" "spin (user)" "msg (user)" "futex (kernel)";
  let v =
    Pool.run
      (List.concat_map
         (fun n ->
           [
             (fun () -> barrier_round `Spin ~ncores:n);
             (fun () -> barrier_round `Msg ~ncores:n);
             (fun () -> futex_round ~ncores:n);
           ])
         barrier_sizes)
    |> Array.of_list
  in
  List.iteri
    (fun i n ->
      Common.printf "%5d %12d %12d %12d\n%!" n v.(3 * i) v.((3 * i) + 1) v.((3 * i) + 2))
    barrier_sizes

(* -- (c) URPC prefetch -- *)

let urpc_numbers ~prefetch =
  let m = Machine.create Platform.amd_4x4 in
  let fwd = Urpc.create m ~sender:0 ~receiver:4 ~prefetch ~name:"abl.fwd" () in
  let bwd = Urpc.create m ~sender:4 ~receiver:0 ~prefetch ~name:"abl.bwd" () in
  Engine.spawn m.Machine.eng (fun () ->
      let rec loop () =
        Urpc.send bwd (Urpc.recv fwd);
        loop ()
      in
      loop ());
  let lat = ref 0.0 in
  Engine.spawn m.Machine.eng (fun () ->
      for _ = 1 to 5 do
        Urpc.send fwd 0;
        ignore (Urpc.recv bwd : int)
      done;
      let t0 = Engine.now_ () in
      let iters = 40 in
      for _ = 1 to iters do
        Urpc.send fwd 0;
        ignore (Urpc.recv bwd : int)
      done;
      lat := float_of_int (Engine.now_ () - t0) /. float_of_int (2 * iters));
  Machine.run m;
  (* Pipelined throughput on a fresh machine. *)
  let m2 = Machine.create Platform.amd_4x4 in
  let pipe = Urpc.create m2 ~sender:0 ~receiver:4 ~slots:16 ~prefetch ~name:"abl.pipe" () in
  let msgs = 400 in
  let elapsed = ref 0 in
  Engine.spawn m2.Machine.eng (fun () ->
      let t0 = ref 0 in
      for i = 1 to msgs do
        ignore (Urpc.recv pipe : int);
        if i = 50 then t0 := Engine.now_ ();
        if i = msgs then elapsed := Engine.now_ () - !t0
      done);
  Engine.spawn m2.Machine.eng (fun () ->
      for i = 1 to msgs do
        Urpc.send pipe i
      done);
  Machine.run m2;
  (!lat, float_of_int (msgs - 50) /. (float_of_int !elapsed /. 1000.0))

let prefetch () =
  Common.sub "(c) URPC prefetch variant (4x4-core AMD, one-hop pair)";
  Common.printf "%10s %12s %14s\n" "variant" "latency" "msgs/kcycle";
  match
    Pool.run
      [
        (fun () -> urpc_numbers ~prefetch:false);
        (fun () -> urpc_numbers ~prefetch:true);
      ]
  with
  | [ (l0, t0); (l1, t1) ] ->
    Common.printf "%10s %12.0f %14.2f\n" "plain" l0 t0;
    Common.printf "%10s %12.0f %14.2f\n%!" "prefetch" l1 t1
  | _ -> assert false

let run () =
  Common.hr "Ablations (page tables, barriers, prefetch)";
  page_tables ();
  barriers ();
  prefetch ()
